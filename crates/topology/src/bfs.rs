//! The workspace's one seeded breadth-first traversal.
//!
//! Three subsystems previously hand-rolled BFS — resilience analysis
//! (components + path stats over degraded graphs), the shard
//! partitioner (greedy frontier growth), and the reference router's
//! distance tables — and each carried its own queue discipline. They
//! now share this helper, so the traversal order is pinned in exactly
//! one place.
//!
//! # Tie-break
//!
//! Traversal order is fully deterministic: routers are discovered in
//! first-parent order, and the neighbors of one parent are expanded in
//! adjacency-list order. Since every adjacency list in this crate is
//! sorted ascending, routers at equal distance are visited in the order
//! of `(discovery order of parent, neighbor index)` — the unique
//! lexicographically-smallest BFS order. `partition`, `resilience`,
//! the reference routing tables, and the optimized engine's degraded
//! rerouting all inherit this order, and
//! `tie_break_is_lowest_index_first` pins it.

use crate::RouterId;
use std::collections::VecDeque;

/// What to do with a router just reached by [`bfs_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsControl {
    /// Keep it: expand its neighbors onto the frontier.
    Descend,
    /// Skip it: counts as visited (never re-reached) but its neighbors
    /// are not expanded — e.g. a router already claimed by another
    /// partition part.
    Prune,
    /// Halt the whole traversal immediately.
    Stop,
}

/// Breadth-first traversal from `src` over an arbitrary adjacency view.
///
/// Calls `visit(router, hop_distance)` exactly once per reachable
/// router, in the deterministic order documented at the module level
/// (`src` first, at distance 0). `neighbors` supplies the adjacency
/// list of a router; pass a closure over [`crate::Topology::neighbors`]
/// or over any rebuilt (e.g. degraded) adjacency.
///
/// `router_count` bounds the visited-marker allocation; every router
/// index returned by `neighbors` must be below it.
pub fn bfs_from<'a, N, V>(router_count: usize, src: RouterId, mut neighbors: N, mut visit: V)
where
    N: FnMut(RouterId) -> &'a [RouterId],
    V: FnMut(RouterId, usize) -> BfsControl,
{
    let mut seen = vec![false; router_count];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back((src, 0usize));
    while let Some((r, d)) = queue.pop_front() {
        match visit(r, d) {
            BfsControl::Stop => return,
            BfsControl::Prune => continue,
            BfsControl::Descend => {}
        }
        for &n in neighbors(r) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                queue.push_back((n, d + 1));
            }
        }
    }
}

/// Hop distances from `src` to every router; unreachable routers get
/// `usize::MAX`. Built on [`bfs_from`], so it shares the documented
/// traversal order.
#[must_use]
pub fn bfs_distances<'a, N>(router_count: usize, src: RouterId, neighbors: N) -> Vec<usize>
where
    N: FnMut(RouterId) -> &'a [RouterId],
{
    let mut dist = vec![usize::MAX; router_count];
    bfs_from(router_count, src, neighbors, |r, d| {
        dist[r.index()] = d;
        BfsControl::Descend
    });
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn distances_match_topology_bfs() {
        for t in [
            Topology::slim_noc(5, 1).unwrap(),
            Topology::mesh(4, 4, 1),
            Topology::torus(4, 4, 1),
        ] {
            for src in t.routers() {
                let d = bfs_distances(t.router_count(), src, |r| t.neighbors(r));
                assert_eq!(d, t.distances_from(src), "{} from {src:?}", t.name());
            }
        }
    }

    #[test]
    fn tie_break_is_lowest_index_first() {
        // On a 3x3 mesh from the corner, routers at each distance must
        // appear in ascending index order: equal-distance candidates
        // are discovered through the lowest-index parent first, and a
        // parent's sorted adjacency list expands lowest index first.
        let t = Topology::mesh(3, 3, 1);
        let mut order = Vec::new();
        bfs_from(
            t.router_count(),
            RouterId(0),
            |r| t.neighbors(r),
            |r, d| {
                order.push((d, r.index()));
                BfsControl::Descend
            },
        );
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "BFS order must be (distance, index)-sorted");
        assert_eq!(order.len(), 9);
    }

    #[test]
    fn prune_stops_expansion_but_not_traversal() {
        // Line 0-1-2-3: pruning router 1 makes 2 and 3 unreachable.
        let t = Topology::mesh(4, 1, 1);
        let mut visited = Vec::new();
        bfs_from(
            t.router_count(),
            RouterId(0),
            |r| t.neighbors(r),
            |r, _| {
                visited.push(r.index());
                if r.index() == 1 {
                    BfsControl::Prune
                } else {
                    BfsControl::Descend
                }
            },
        );
        assert_eq!(visited, vec![0, 1]);
    }

    #[test]
    fn stop_halts_immediately() {
        let t = Topology::mesh(4, 4, 1);
        let mut count = 0;
        bfs_from(
            t.router_count(),
            RouterId(0),
            |r| t.neighbors(r),
            |_, _| {
                count += 1;
                if count == 3 {
                    BfsControl::Stop
                } else {
                    BfsControl::Descend
                }
            },
        );
        assert_eq!(count, 3);
    }

    #[test]
    fn unreachable_routers_get_max_sentinel() {
        // An adjacency view that hides every link isolates the source.
        let t = Topology::mesh(3, 3, 1);
        let d = bfs_distances(t.router_count(), RouterId(4), |_| &[]);
        assert_eq!(d[4], 0);
        assert_eq!(d.iter().filter(|&&x| x == usize::MAX).count(), 8);
    }
}
