//! Slim NoC (MMS graph) construction — Eqs. (8)–(10) of the paper.

use crate::{Topology, TopologyError, TopologyKind};
use snoc_field::{Elem, GeneratorSets, Gf, SlimFlyParams};
use std::fmt;

/// The paper's router label `[G|a, b]` (§3.2.1, Fig. 2b): `G` is the
/// subgroup type (0 or 1), `a` the subgroup identifier, `b` the position in
/// the subgroup. `a` and `b` are field elements, stored by canonical index
/// (0-based; the paper prints them 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterLabel {
    /// Subgroup type `G ∈ {0, 1}`.
    pub g: usize,
    /// Subgroup ID `a` (0-based field-element index).
    pub a: usize,
    /// Position in the subgroup `b` (0-based field-element index).
    pub b: usize,
}

impl RouterLabel {
    /// The unique router index for this label:
    /// `i = G·q² + a·q + b` (0-based version of the paper's formula
    /// `i = G·q² + (a−1)·q + b`).
    #[must_use]
    pub fn index(&self, q: usize) -> usize {
        self.g * q * q + self.a * q + self.b
    }

    /// Reconstructs the label from a router index.
    #[must_use]
    pub fn from_index(i: usize, q: usize) -> Self {
        RouterLabel {
            g: i / (q * q),
            a: (i / q) % q,
            b: i % q,
        }
    }
}

impl fmt::Display for RouterLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper prints labels 1-based: [G|a, b] with a, b ∈ {1..q}.
        write!(f, "[{}|{},{}]", self.g, self.a + 1, self.b + 1)
    }
}

/// Builds the Slim NoC topology for parameter `q` and concentration `p`.
pub(crate) fn build(q: usize, concentration: usize) -> Result<Topology, TopologyError> {
    if concentration == 0 {
        return Err(TopologyError::ZeroConcentration);
    }
    let params = SlimFlyParams::new(q)?;
    let field = Gf::new(q)?;
    let sets = GeneratorSets::generate(&field)?;
    Ok(build_with(&field, &sets, params, concentration))
}

/// Builds the MMS graph given an explicit field and generator sets.
///
/// Subgroup type 0 routers are `[0|a, b]`; type 1 routers `[1|m, c]`.
/// Connections (paper Eqs. 8–10):
///
/// - `[0|a,b] ⇌ [0|a,b']  ⇔  b − b' ∈ X`
/// - `[1|m,c] ⇌ [1|m,c']  ⇔  c − c' ∈ X'`
/// - `[0|a,b] ⇌ [1|m,c]  ⇔  b = m·a + c`
pub(crate) fn build_with(
    field: &Gf,
    sets: &GeneratorSets,
    params: SlimFlyParams,
    concentration: usize,
) -> Topology {
    let q = field.order();
    let nr = params.router_count();
    let idx = |g: usize, a: Elem, b: Elem| g * q * q + a.index() * q + b.index();

    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Intra-subgroup links, type 0 (Eq. 8) and type 1 (Eq. 9).
    for a in field.elements() {
        for b in field.elements() {
            for bp in field.elements() {
                if b < bp && sets.x().contains(&field.sub(b, bp)) {
                    edges.push((idx(0, a, b), idx(0, a, bp)));
                }
                if b < bp && sets.x_prime().contains(&field.sub(b, bp)) {
                    edges.push((idx(1, a, b), idx(1, a, bp)));
                }
            }
        }
    }

    // Inter-subgroup links (Eq. 10): [0|a,b] ⇌ [1|m,c] iff b = m·a + c.
    for a in field.elements() {
        for b in field.elements() {
            for m in field.elements() {
                let c = field.sub(b, field.mul(m, a));
                edges.push((idx(0, a, b), idx(1, m, c)));
            }
        }
    }

    let labels: Vec<RouterLabel> = (0..nr).map(|i| RouterLabel::from_index(i, q)).collect();

    Topology::from_edges(
        TopologyKind::SlimNoc { q, labels },
        format!("sn q={q}"),
        nr,
        concentration,
        edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouterId;

    #[test]
    fn label_index_roundtrip() {
        for q in [2, 3, 5, 9] {
            for i in 0..2 * q * q {
                let label = RouterLabel::from_index(i, q);
                assert_eq!(label.index(q), i, "q = {q}, i = {i}");
                assert!(label.g < 2 && label.a < q && label.b < q);
            }
        }
    }

    #[test]
    fn label_display_is_one_based() {
        let l = RouterLabel { g: 1, a: 0, b: 4 };
        assert_eq!(l.to_string(), "[1|1,5]");
    }

    #[test]
    fn slim_noc_is_regular_with_paper_radix() {
        for q in [2, 3, 4, 5, 7, 8, 9] {
            let t = Topology::slim_noc(q, 1).unwrap();
            let params = SlimFlyParams::new(q).unwrap();
            assert!(t.is_regular(), "q = {q}");
            assert_eq!(t.network_radix(), params.network_radix(), "q = {q}");
            assert_eq!(t.router_count(), params.router_count(), "q = {q}");
        }
    }

    #[test]
    fn slim_noc_has_diameter_two() {
        // The headline structural property (q = 2 gives a tiny graph that
        // is diameter 2 as well).
        for q in [2, 3, 4, 5, 7, 8, 9] {
            let t = Topology::slim_noc(q, 1).unwrap();
            assert_eq!(t.diameter(), 2, "q = {q}");
        }
    }

    #[test]
    fn no_links_between_same_type_different_subgroups() {
        // §2.1: "No links exist between subgroups of the same type."
        let q = 5;
        let t = Topology::slim_noc(q, 1).unwrap();
        let labels = t.slim_noc_labels().unwrap().to_vec();
        for (a, b) in t.links() {
            let la = labels[a.index()];
            let lb = labels[b.index()];
            if la.g == lb.g {
                assert_eq!(la.a, lb.a, "same-type link must stay within a subgroup");
            }
        }
    }

    #[test]
    fn every_two_opposite_subgroups_joined_by_q_cables() {
        // §2.1: "Every two subgroups of different types are connected with
        // the same number of cables (also q)."
        let q = 5;
        let t = Topology::slim_noc(q, 1).unwrap();
        let labels = t.slim_noc_labels().unwrap().to_vec();
        for a0 in 0..q {
            for a1 in 0..q {
                let count = t
                    .links()
                    .filter(|&(x, y)| {
                        let lx = labels[x.index()];
                        let ly = labels[y.index()];
                        (lx.g == 0 && lx.a == a0 && ly.g == 1 && ly.a == a1)
                            || (ly.g == 0 && ly.a == a0 && lx.g == 1 && lx.a == a1)
                    })
                    .count();
                assert_eq!(count, q, "subgroups ({a0}, {a1})");
            }
        }
    }

    #[test]
    fn groups_form_complete_graph_with_uniform_cable_count() {
        // §2.1 describes groups (subgroups of both types merged pairwise)
        // forming a complete graph with a uniform number of cables per
        // group pair. With the diagonal pairing ([0|a,·] with [1|a,·]) the
        // exact count implied by Eq. 10 is 2q per pair: each of the two
        // opposite-type subgroup pairs across the two groups contributes
        // exactly q cables. (The paper's prose says 2(q−1); the
        // construction itself, which we verify here, gives 2q.)
        let q = 5;
        let t = Topology::slim_noc(q, 1).unwrap();
        let labels = t.slim_noc_labels().unwrap().to_vec();
        for ga in 0..q {
            for gb in (ga + 1)..q {
                let count = t
                    .links()
                    .filter(|&(x, y)| {
                        let ax = labels[x.index()].a;
                        let ay = labels[y.index()].a;
                        (ax == ga && ay == gb) || (ax == gb && ay == ga)
                    })
                    .count();
                assert_eq!(count, 2 * q, "groups ({ga}, {gb})");
            }
        }
    }

    #[test]
    fn sn_s_structure() {
        // SN-S (§3.4): 200 nodes, 50 routers, 10 subgroups, 5 groups.
        let t = Topology::slim_noc(5, 4).unwrap();
        assert_eq!(t.node_count(), 200);
        assert_eq!(t.router_count(), 50);
        assert_eq!(t.router_radix(), 11); // k = k' + p = 7 + 4
    }

    #[test]
    fn sn_l_structure() {
        // SN-L (§3.4): 1296 nodes, 162 routers, 9 groups of 18 routers.
        let t = Topology::slim_noc(9, 8).unwrap();
        assert_eq!(t.node_count(), 1296);
        assert_eq!(t.router_count(), 162);
        assert_eq!(t.network_radix(), 13);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn neighbors_are_sorted_and_unique() {
        let t = Topology::slim_noc(7, 1).unwrap();
        for r in t.routers() {
            let n = t.neighbors(r);
            for w in n.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(!n.contains(&r), "no self-loop at {r}");
        }
    }

    #[test]
    fn connectivity_is_symmetric() {
        let t = Topology::slim_noc(5, 1).unwrap();
        for a in t.routers() {
            for &b in t.neighbors(a) {
                assert!(t.connected(b, a));
            }
        }
        assert!(!t.connected(RouterId(0), RouterId(0)));
    }
}
