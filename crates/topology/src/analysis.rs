//! Shortest-path analysis over router graphs.

use crate::{bfs_distances, RouterId, Topology};

/// Shortest-path statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Maximum shortest-path length over all router pairs (the network
    /// diameter `D`).
    pub diameter: usize,
    /// Average shortest-path length over all ordered pairs of distinct
    /// routers.
    pub average: f64,
    /// `histogram[d]` = number of unordered router pairs at distance `d`.
    pub histogram: Vec<usize>,
}

/// BFS distances from one router. Unreachable routers get `usize::MAX`.
pub(crate) fn bfs(topo: &Topology, src: RouterId) -> Vec<usize> {
    bfs_distances(topo.router_count(), src, |r| topo.neighbors(r))
}

/// All-pairs shortest-path statistics via per-source BFS.
///
/// # Panics
///
/// Panics if the topology is disconnected (every topology in this crate is
/// connected by construction).
pub(crate) fn path_stats(topo: &Topology) -> PathStats {
    let mut histogram: Vec<usize> = Vec::new();
    let mut total = 0usize;
    let mut pairs = 0usize;
    for src in topo.routers() {
        let dist = bfs(topo, src);
        for (j, &d) in dist.iter().enumerate() {
            if j <= src.index() {
                continue;
            }
            assert!(d != usize::MAX, "topology is disconnected");
            if d >= histogram.len() {
                histogram.resize(d + 1, 0);
            }
            histogram[d] += 1;
            total += d;
            pairs += 1;
        }
    }
    let diameter = histogram.len().saturating_sub(1);
    let average = if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    };
    PathStats {
        diameter,
        average,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn line_graph_distances() {
        let line = Topology::mesh(4, 1, 1);
        let d = bfs(&line, RouterId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn path_stats_of_square_mesh() {
        let m = Topology::mesh(2, 2, 1);
        let s = m.path_stats();
        assert_eq!(s.diameter, 2);
        // Pairs: 4 at distance 1 (edges), 2 at distance 2 (diagonals).
        assert_eq!(s.histogram, vec![0, 4, 2]);
        assert!((s.average - (4.0 + 4.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_pair_count_is_complete() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let s = t.path_stats();
        let n = t.router_count();
        assert_eq!(s.histogram.iter().sum::<usize>(), n * (n - 1) / 2);
        assert_eq!(s.histogram[1], t.link_count());
    }

    #[test]
    fn average_below_diameter() {
        for t in [
            Topology::slim_noc(5, 1).unwrap(),
            Topology::torus(6, 6, 1),
            Topology::flattened_butterfly(6, 6, 1),
        ] {
            let s = t.path_stats();
            assert!(s.average <= s.diameter as f64);
            assert!(s.average >= 1.0);
        }
    }

    #[test]
    fn cut_links_vertical_halves_of_mesh() {
        // 4x4 mesh cut into left/right halves: 4 crossing links.
        let m = Topology::mesh(4, 4, 1);
        let crossing = m.cut_links(|r| r.index() % 4 < 2);
        assert_eq!(crossing, 4);
    }
}
