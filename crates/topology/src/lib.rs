//! NoC topologies for the Slim NoC reproduction.
//!
//! The centerpiece is [`Topology::slim_noc`], which constructs the MMS
//! graph of the paper (Eqs. 8–10) from a finite field. The crate also
//! implements every baseline the paper evaluates against (§5.1, Table 4):
//!
//! - 2D torus (`T2D`) and concentrated mesh (`CM`),
//! - full-bandwidth Flattened Butterfly (`FBF`),
//! - partitioned Flattened Butterfly (`PFBF`) — the paper's fairness
//!   baseline matching Slim NoC's radix and bisection bandwidth,
//! - Dragonfly (`DF`, §2.2) and a folded Clos (§5.5),
//!
//! plus graph analysis (diameter, average path length, bisection) and the
//! paper's named configurations (Tables 2 and 4).
//!
//! # Example
//!
//! ```
//! use snoc_topology::Topology;
//!
//! // SN-S: the paper's 200-node design (q = 5, p = 4).
//! let sn = Topology::slim_noc(5, 4)?;
//! assert_eq!(sn.router_count(), 50);
//! assert_eq!(sn.network_radix(), 7);
//! assert_eq!(sn.diameter(), 2);
//!
//! // The torus baseline of the same size class.
//! let t2d = Topology::torus(10, 5, 4);
//! assert_eq!(t2d.node_count(), 200);
//! # Ok::<(), snoc_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod bfs;
mod clos;
mod configs;
mod dragonfly;
mod error;
mod grids;
mod partition;
mod resilience;
mod slimnoc;

pub use analysis::PathStats;
pub use bfs::{bfs_distances, bfs_forest, bfs_from, BfsControl, BfsForest};
pub use configs::{paper_config, paper_config_names, table2_rows, ConfigDescriptor, Table2Row};
pub use error::TopologyError;
pub use resilience::ResilienceReport;
pub use slimnoc::RouterLabel;

use snoc_field::SlimFlyParams;
use std::fmt;

/// Identifier of a router in a topology (index in `0..router_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RouterId(pub usize);

impl RouterId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an endpoint node (core) in a topology
/// (index in `0..node_count`). Node `n` attaches to router
/// `n / concentration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which family a [`Topology`] instance belongs to, with the structural
/// details the layout crate needs to place it on a die.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyKind {
    /// Slim NoC (MMS graph) with parameter `q`.
    SlimNoc {
        /// The Slim Fly input parameter.
        q: usize,
        /// Per-router labels `[G|a,b]` in index order.
        labels: Vec<RouterLabel>,
    },
    /// Plain 2D mesh (`x × y` routers). With concentration > 1 this is the
    /// paper's concentrated mesh (CM).
    Mesh {
        /// Routers along X.
        x: usize,
        /// Routers along Y.
        y: usize,
    },
    /// 2D torus (`x × y` routers with wraparound links).
    Torus {
        /// Routers along X.
        x: usize,
        /// Routers along Y.
        y: usize,
    },
    /// Flattened Butterfly: routers fully connected along each row and
    /// each column of an `x × y` grid.
    FlattenedButterfly {
        /// Routers along X.
        x: usize,
        /// Routers along Y.
        y: usize,
    },
    /// Partitioned Flattened Butterfly (Fig. 9): a `parts_x × parts_y`
    /// grid of identical `sub_x × sub_y` FBFs, adjacent partitions joined
    /// by one port per router per partitioned dimension.
    PartitionedFbf {
        /// Partitions along X.
        parts_x: usize,
        /// Partitions along Y.
        parts_y: usize,
        /// Routers along X inside one partition.
        sub_x: usize,
        /// Routers along Y inside one partition.
        sub_y: usize,
    },
    /// Balanced Dragonfly: groups of `a = 2h` fully connected routers,
    /// `h` global links per router, one cable between every two groups.
    Dragonfly {
        /// Global links per router.
        h: usize,
    },
    /// Folded Clos (2-level fat tree): `leaves` leaf routers each wired to
    /// all `spines` spine routers; nodes attach to leaves only.
    FoldedClos {
        /// Leaf router count.
        leaves: usize,
        /// Spine router count.
        spines: usize,
    },
}

/// A NoC topology: a router graph plus a uniform concentration
/// (nodes per router).
///
/// Construction never produces self-loops or duplicate edges; adjacency
/// lists are sorted. See the crate docs for an example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    name: String,
    adj: Vec<Vec<RouterId>>,
    concentration: usize,
}

impl Topology {
    /// Internal constructor from an edge list; validates, sorts and
    /// dedupes adjacency.
    pub(crate) fn from_edges(
        kind: TopologyKind,
        name: impl Into<String>,
        router_count: usize,
        concentration: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Self {
        let mut adj: Vec<Vec<RouterId>> = vec![Vec::new(); router_count];
        for (a, b) in edges {
            assert!(a < router_count && b < router_count, "edge out of range");
            assert_ne!(a, b, "self-loop");
            adj[a].push(RouterId(b));
            adj[b].push(RouterId(a));
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology {
            kind,
            name: name.into(),
            adj,
            concentration,
        }
    }

    /// Builds a Slim NoC from the Slim Fly parameter `q` and a
    /// concentration `p`, using the canonical field `GF(q)`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if `q` is not a valid Slim Fly parameter
    /// or `p == 0`.
    pub fn slim_noc(q: usize, concentration: usize) -> Result<Self, TopologyError> {
        slimnoc::build(q, concentration)
    }

    /// Builds a 2D mesh of `x × y` routers with `p` nodes per router
    /// (`p > 1` makes this the paper's concentrated mesh, CM).
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    #[must_use]
    pub fn mesh(x: usize, y: usize, concentration: usize) -> Self {
        grids::mesh(x, y, concentration)
    }

    /// Builds a 2D torus (T2D) of `x × y` routers with `p` nodes each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    #[must_use]
    pub fn torus(x: usize, y: usize, concentration: usize) -> Self {
        grids::torus(x, y, concentration)
    }

    /// Builds a full-bandwidth Flattened Butterfly (FBF) on an `x × y`
    /// router grid with `p` nodes per router.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    #[must_use]
    pub fn flattened_butterfly(x: usize, y: usize, concentration: usize) -> Self {
        grids::flattened_butterfly(x, y, concentration)
    }

    /// Builds a partitioned FBF (PFBF, Fig. 9): `parts_x × parts_y`
    /// identical FBFs of `sub_x × sub_y` routers, with one port per router
    /// toward each adjacent partition in each partitioned dimension.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    #[must_use]
    pub fn partitioned_fbf(
        parts_x: usize,
        parts_y: usize,
        sub_x: usize,
        sub_y: usize,
        concentration: usize,
    ) -> Self {
        grids::partitioned_fbf(parts_x, parts_y, sub_x, sub_y, concentration)
    }

    /// Builds a balanced Dragonfly with `h` global links per router
    /// (`a = 2h` routers per group, `g = 2h² + 1` groups, `p = h` nodes
    /// per router).
    ///
    /// # Panics
    ///
    /// Panics if `h == 0`.
    #[must_use]
    pub fn dragonfly(h: usize) -> Self {
        dragonfly::dragonfly(h)
    }

    /// Builds a folded Clos: `leaves` leaf routers each connected to all
    /// `spines` spine routers, `p` nodes per leaf (spines have none).
    ///
    /// # Panics
    ///
    /// Panics if `leaves`, `spines`, or the concentration is zero.
    #[must_use]
    pub fn folded_clos(leaves: usize, spines: usize, concentration: usize) -> Self {
        clos::folded_clos(leaves, spines, concentration)
    }

    /// The family and structural details of this topology.
    #[must_use]
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    /// Short human-readable name (e.g. `"sn q=5"`, `"t2d 10x5"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of routers `N_r`.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.adj.len()
    }

    /// Nodes per router (`p`, the concentration).
    #[must_use]
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// Total number of endpoint nodes `N = N_r · p`.
    ///
    /// For the folded Clos, only leaf routers carry nodes (spine routers
    /// contribute no endpoints); see the `clos` module docs.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self.kind {
            TopologyKind::FoldedClos { leaves, .. } => leaves * self.concentration,
            _ => self.router_count() * self.concentration,
        }
    }

    /// Routers adjacent to `r` (sorted, no duplicates).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn neighbors(&self, r: RouterId) -> &[RouterId] {
        &self.adj[r.0]
    }

    /// Network radix `k'`: the maximum router-to-router degree.
    #[must_use]
    pub fn network_radix(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum router-to-router degree.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Full router radix `k = k' + p`.
    #[must_use]
    pub fn router_radix(&self) -> usize {
        self.network_radix() + self.concentration
    }

    /// `true` if every router has the same router-to-router degree.
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.network_radix() == self.min_degree()
    }

    /// Total number of (undirected) router-to-router links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// `true` if routers `a` and `b` are directly connected.
    #[must_use]
    pub fn connected(&self, a: RouterId, b: RouterId) -> bool {
        self.adj[a.0].binary_search(&b).is_ok()
    }

    /// The router that node `n` attaches to.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn router_of(&self, n: NodeId) -> RouterId {
        assert!(n.0 < self.node_count(), "node {} out of range", n.0);
        RouterId(n.0 / self.concentration)
    }

    /// The nodes attached to router `r` (empty for spine routers in a
    /// folded Clos).
    #[must_use]
    pub fn nodes_of(&self, r: RouterId) -> Vec<NodeId> {
        let first = r.0 * self.concentration;
        if first >= self.node_count() {
            return Vec::new();
        }
        (first..first + self.concentration).map(NodeId).collect()
    }

    /// Iterates over all routers.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.router_count()).map(RouterId)
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterates over all undirected links as `(a, b)` pairs with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, list)| {
            list.iter()
                .filter(move |b| a < b.0)
                .map(move |&b| (RouterId(a), b))
        })
    }

    /// Shortest-path hop counts from `src` to every router (BFS).
    #[must_use]
    pub fn distances_from(&self, src: RouterId) -> Vec<usize> {
        analysis::bfs(self, src)
    }

    /// Network diameter in router hops.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    #[must_use]
    pub fn diameter(&self) -> usize {
        self.path_stats().diameter
    }

    /// Average shortest-path length over all ordered router pairs.
    #[must_use]
    pub fn average_path_length(&self) -> f64 {
        self.path_stats().average
    }

    /// Full shortest-path statistics (diameter, average, histogram).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    #[must_use]
    pub fn path_stats(&self) -> PathStats {
        analysis::path_stats(self)
    }

    /// Counts links crossing a partition of routers given by `side`
    /// (`side(r) == true` means `r` is on the "left"). Used to compute
    /// bisection bandwidth for layout-defined cuts.
    #[must_use]
    pub fn cut_links(&self, side: impl Fn(RouterId) -> bool) -> usize {
        self.links().filter(|&(a, b)| side(a) != side(b)).count()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (N_r = {}, p = {}, k' = {})",
            self.name,
            self.router_count(),
            self.concentration,
            self.network_radix()
        )
    }
}

/// Convenience: derived Slim Fly parameters for a Slim NoC topology.
impl Topology {
    /// Returns the Slim Fly parameters if this is a Slim NoC topology.
    #[must_use]
    pub fn slim_fly_params(&self) -> Option<SlimFlyParams> {
        match &self.kind {
            TopologyKind::SlimNoc { q, .. } => SlimFlyParams::new(*q).ok(),
            _ => None,
        }
    }

    /// Returns the router labels if this is a Slim NoC topology.
    #[must_use]
    pub fn slim_noc_labels(&self) -> Option<&[RouterLabel]> {
        match &self.kind {
            TopologyKind::SlimNoc { labels, .. } => Some(labels),
            _ => None,
        }
    }
}
