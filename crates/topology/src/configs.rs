//! The paper's named configurations (Table 4) and the Slim NoC
//! configuration space (Table 2).

use crate::{Topology, TopologyError};
use snoc_field::{factor_prime_power, SlimFlyParams};

/// One row of the paper's Table 2: a Slim NoC configuration with
/// `N ≤ 1300` nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// The Slim Fly input parameter `q`.
    pub q: usize,
    /// `true` when `GF(q)` is a prime field (lower half of Table 2).
    pub prime_field: bool,
    /// Network radix `k'`.
    pub network_radix: usize,
    /// Concentration `p`.
    pub concentration: usize,
    /// The "ideal" concentration `⌈k'/2⌉`.
    pub ideal_concentration: usize,
    /// Over-/under-subscription `p / ⌈k'/2⌉` in percent (column `**`).
    pub subscription_percent: usize,
    /// Network size `N`.
    pub network_size: usize,
    /// Router count `N_r = 2q²`.
    pub router_count: usize,
    /// Bold in the paper: `N` is a power of two.
    pub n_power_of_two: bool,
    /// Grey shade in the paper: equally many groups per die side
    /// (`q` is a perfect square).
    pub equal_groups_per_side: bool,
    /// Dark grey: additionally `N` is a perfect square.
    pub n_perfect_square: bool,
}

/// Enumerates the Slim NoC configuration space up to `node_limit` nodes,
/// reproducing the paper's Table 2 (which uses `node_limit = 1300`).
///
/// For each prime-power `q`, concentrations range over
/// `⌈⅔·p_ideal⌉ ..= ⌊4/3·p_ideal⌋` (the paper's 66%–133% subscription
/// band), filtered by the node limit.
#[must_use]
pub fn table2_rows(node_limit: usize) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for q in 2..=64 {
        let Some((_, n_ext)) = factor_prime_power(q) else {
            continue;
        };
        let Ok(params) = SlimFlyParams::new(q) else {
            continue;
        };
        let nr = params.router_count();
        let k = params.network_radix();
        let ideal = params.ideal_concentration();
        let p_min = (2 * ideal).div_ceil(3);
        let p_max = 4 * ideal / 3;
        for p in p_min..=p_max {
            let n = nr * p;
            if n > node_limit {
                continue;
            }
            rows.push(Table2Row {
                q,
                prime_field: n_ext == 1,
                network_radix: k,
                concentration: p,
                ideal_concentration: ideal,
                subscription_percent: p * 100 / ideal,
                network_size: n,
                router_count: nr,
                n_power_of_two: n.is_power_of_two(),
                equal_groups_per_side: is_perfect_square(q),
                n_perfect_square: is_perfect_square(n),
            });
        }
    }
    // Paper orders by field class (non-prime first), then by radix.
    rows.sort_by_key(|r| (r.prime_field, r.network_radix, r.concentration));
    rows
}

fn is_perfect_square(n: usize) -> bool {
    let r = (n as f64).sqrt().round() as usize;
    r * r == n
}

/// A named experiment configuration from the paper's Table 4 (plus the
/// `N = 54` class of §5.6): a topology together with its router cycle
/// time.
///
/// Cycle times follow §5.1: 0.5 ns for SN and PFBF, 0.4 ns for the
/// low-radix T2D and CM, 0.6 ns for the high-radix FBF.
#[derive(Debug, Clone)]
pub struct ConfigDescriptor {
    /// The paper's name for this configuration (e.g. `"fbf3"`).
    pub name: &'static str,
    /// Router cycle time in nanoseconds.
    pub cycle_time_ns: f64,
    /// The constructed topology.
    pub topology: Topology,
}

/// All configuration names accepted by [`paper_config`].
#[must_use]
pub fn paper_config_names() -> Vec<&'static str> {
    vec![
        // N ∈ {192, 200} class.
        "t2d3", "t2d4", "cm3", "cm4", "fbf3", "fbf4", "pfbf3", "pfbf4", "sn_s",
        // N = 1296 class.
        "t2d9", "t2d8", "cm9", "cm8", "fbf9", "fbf8", "pfbf9", "pfbf8", "sn_l",
        // N = 1024 power-of-two design.
        "sn_p2", // N = 54 class (§5.6).
        "t2d54", "cm54", "fbf54", "pfbf54", "sn54",
        // Balanced Dragonflies (§2.2 baseline; the energy-comparison
        // class uses df3, the size nearest the N ∈ {192, 200} networks).
        "df2", "df3",
    ]
}

/// Builds a named configuration from the paper (Table 4, §3.4, §5.6).
///
/// # Errors
///
/// Returns [`TopologyError::UnknownConfig`] for unknown names, and
/// propagates Slim NoC construction errors.
pub fn paper_config(name: &str) -> Result<ConfigDescriptor, TopologyError> {
    let (cycle_time_ns, topology) = match name {
        // --- N ∈ {192, 200} ---
        "t2d3" => (0.4, Topology::torus(8, 8, 3)),
        "t2d4" => (0.4, Topology::torus(10, 5, 4)),
        "cm3" => (0.4, Topology::mesh(8, 8, 3)),
        "cm4" => (0.4, Topology::mesh(10, 5, 4)),
        "fbf3" => (0.6, Topology::flattened_butterfly(8, 8, 3)),
        "fbf4" => (0.6, Topology::flattened_butterfly(10, 5, 4)),
        "pfbf3" => (0.5, Topology::partitioned_fbf(2, 2, 4, 4, 3)),
        "pfbf4" => (0.5, Topology::partitioned_fbf(2, 1, 5, 5, 4)),
        "sn_s" => (0.5, Topology::slim_noc(5, 4)?),
        // --- N = 1296 ---
        "t2d9" => (0.4, Topology::torus(12, 12, 9)),
        "t2d8" => (0.4, Topology::torus(18, 9, 8)),
        "cm9" => (0.4, Topology::mesh(12, 12, 9)),
        "cm8" => (0.4, Topology::mesh(18, 9, 8)),
        "fbf9" => (0.6, Topology::flattened_butterfly(12, 12, 9)),
        "fbf8" => (0.6, Topology::flattened_butterfly(18, 9, 8)),
        "pfbf9" => (0.5, Topology::partitioned_fbf(2, 2, 6, 6, 9)),
        "pfbf8" => (0.5, Topology::partitioned_fbf(2, 1, 9, 9, 8)),
        "sn_l" => (0.5, Topology::slim_noc(9, 8)?),
        // --- N = 1024 ---
        "sn_p2" => (0.5, Topology::slim_noc(8, 8)?),
        // --- N = 54 (§5.6, KNL-scale) ---
        "t2d54" => (0.4, Topology::torus(6, 3, 3)),
        "cm54" => (0.4, Topology::mesh(6, 3, 3)),
        "fbf54" => (0.6, Topology::flattened_butterfly(6, 3, 3)),
        "pfbf54" => (0.5, Topology::partitioned_fbf(2, 1, 3, 3, 3)),
        "sn54" => (0.5, Topology::slim_noc(3, 3)?),
        // --- Balanced Dragonflies (h global links/router; N = 72, 342).
        // Cycle times by radix class: df2 has k = 7 (low-radix, 0.4 ns),
        // df3 has k = 11 (the SN/PFBF class, 0.5 ns).
        "df2" => (0.4, Topology::dragonfly(2)),
        "df3" => (0.5, Topology::dragonfly(3)),
        _ => {
            return Err(TopologyError::UnknownConfig {
                name: name.to_string(),
            })
        }
    };
    Ok(ConfigDescriptor {
        name: paper_config_names()
            .into_iter()
            .find(|&n| n == name)
            .expect("name validated above"),
        cycle_time_ns,
        topology,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contains_all_paper_rows() {
        // Every (q, p, N) row printed in Table 2 of the paper.
        let expected: &[(usize, usize, usize)] = &[
            // Non-prime finite fields.
            (4, 2, 64),
            (4, 3, 96),
            (4, 4, 128),
            (8, 4, 512),
            (8, 5, 640),
            (8, 6, 768),
            (8, 7, 896),
            (8, 8, 1024),
            (9, 5, 810),
            (9, 6, 972),
            (9, 7, 1134),
            (9, 8, 1296),
            // Prime finite fields.
            (2, 2, 16),
            (3, 2, 36),
            (3, 3, 54),
            (3, 4, 72),
            (5, 3, 150),
            (5, 4, 200),
            (5, 5, 250),
            (7, 4, 392),
            (7, 5, 490),
            (7, 6, 588),
            (7, 7, 686),
            (7, 8, 784),
        ];
        let rows = table2_rows(1300);
        for &(q, p, n) in expected {
            assert!(
                rows.iter()
                    .any(|r| r.q == q && r.concentration == p && r.network_size == n),
                "missing Table 2 row (q={q}, p={p}, N={n})"
            );
        }
    }

    #[test]
    fn table2_radix_and_router_columns() {
        let rows = table2_rows(1300);
        for r in &rows {
            let params = SlimFlyParams::new(r.q).unwrap();
            assert_eq!(r.network_radix, params.network_radix());
            assert_eq!(r.router_count, params.router_count());
            assert_eq!(r.network_size, r.router_count * r.concentration);
        }
    }

    #[test]
    fn table2_highlights() {
        let rows = table2_rows(1300);
        // Bold rows (power-of-two N): 16, 64, 128, 512, 1024.
        let bold: Vec<usize> = rows
            .iter()
            .filter(|r| r.n_power_of_two)
            .map(|r| r.network_size)
            .collect();
        assert!(bold.contains(&16));
        assert!(bold.contains(&64));
        assert!(bold.contains(&128));
        assert!(bold.contains(&512));
        assert!(bold.contains(&1024));
        // Dark grey: q = 9, N = 1296 is a perfect square with equal groups.
        let sn_l = rows
            .iter()
            .find(|r| r.q == 9 && r.network_size == 1296)
            .unwrap();
        assert!(sn_l.equal_groups_per_side);
        assert!(sn_l.n_perfect_square);
    }

    #[test]
    fn table2_subscription_band() {
        for r in table2_rows(1300) {
            assert!(
                (66..=133).contains(&r.subscription_percent),
                "row q={} p={} has subscription {}%",
                r.q,
                r.concentration,
                r.subscription_percent
            );
        }
    }

    #[test]
    fn all_paper_configs_build() {
        for name in paper_config_names() {
            let cfg = paper_config(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(cfg.topology.router_count() > 0, "{name}");
            assert!(cfg.cycle_time_ns > 0.0, "{name}");
        }
    }

    #[test]
    fn config_sizes_match_table4() {
        let sizes: &[(&str, usize, usize)] = &[
            // (name, N, k)
            ("t2d3", 192, 7),
            ("t2d4", 200, 8),
            ("cm3", 192, 7),
            ("cm4", 200, 8),
            ("fbf3", 192, 17),
            ("fbf4", 200, 17),
            ("pfbf3", 192, 11),
            ("pfbf4", 200, 13),
            ("sn_s", 200, 11),
            ("t2d9", 1296, 13),
            ("t2d8", 1296, 12),
            ("cm9", 1296, 13),
            ("cm8", 1296, 12),
            ("fbf9", 1296, 31),
            ("fbf8", 1296, 33),
            ("pfbf9", 1296, 21),
            ("pfbf8", 1296, 25),
            ("sn_l", 1296, 21),
            ("sn_p2", 1024, 20),
        ];
        for &(name, n, k) in sizes {
            let cfg = paper_config(name).unwrap();
            assert_eq!(cfg.topology.node_count(), n, "{name} node count");
            assert_eq!(cfg.topology.router_radix(), k, "{name} router radix");
        }
    }

    #[test]
    fn dragonfly_configs_match_balanced_construction() {
        // Balanced DF: a = 2h routers/group, g = a·h + 1 groups, p = h.
        let df2 = paper_config("df2").unwrap();
        assert_eq!(df2.topology.node_count(), 72);
        assert_eq!(df2.topology.router_radix(), 7); // (a-1) + h + p
        assert_eq!(df2.topology.diameter(), 3);
        let df3 = paper_config("df3").unwrap();
        assert_eq!(df3.topology.node_count(), 342);
        assert_eq!(df3.topology.router_radix(), 11);
        assert_eq!(df3.cycle_time_ns, 0.5, "same radix class as sn_s");
    }

    #[test]
    fn unknown_config_is_reported() {
        assert!(matches!(
            paper_config("hypercube"),
            Err(TopologyError::UnknownConfig { .. })
        ));
    }

    #[test]
    fn cycle_times_follow_radix_classes() {
        assert_eq!(paper_config("fbf3").unwrap().cycle_time_ns, 0.6);
        assert_eq!(paper_config("t2d3").unwrap().cycle_time_ns, 0.4);
        assert_eq!(paper_config("sn_s").unwrap().cycle_time_ns, 0.5);
        assert_eq!(paper_config("pfbf9").unwrap().cycle_time_ns, 0.5);
    }
}
