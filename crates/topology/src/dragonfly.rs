//! Balanced Dragonfly topology (§2.2 comparison baseline).
//!
//! The paper contrasts Slim Fly with Dragonfly [43]: groups of fully
//! connected routers where every two groups are joined by exactly *one*
//! cable (vs. `2(q−1)` in Slim Fly), yielding diameter 3.
//!
//! We build the balanced configuration of Kim et al.: `a = 2h` routers per
//! group, `h` global links per router, `p = h` nodes per router and
//! `g = a·h + 1` groups, so each group's `a·h = g − 1` global links connect
//! it to every other group exactly once.

use crate::{Topology, TopologyKind};

pub(crate) fn dragonfly(h: usize) -> Topology {
    assert!(h > 0, "dragonfly h must be positive");
    let a = 2 * h; // routers per group
    let g = a * h + 1; // groups
    let nr = a * g;
    let idx = |group: usize, router: usize| group * a + router;
    let mut edges = Vec::new();

    // Intra-group: complete graph on `a` routers.
    for group in 0..g {
        for r1 in 0..a {
            for r2 in r1 + 1..a {
                edges.push((idx(group, r1), idx(group, r2)));
            }
        }
    }

    // Global links: the "absolute" arrangement. Router `r` of group `gi`
    // owns global channels `r*h .. r*h + h`; channel `c` connects to group
    // `c` if `c < gi`, else group `c + 1`. Each pair of groups ends up
    // joined by exactly one cable.
    for gi in 0..g {
        for r in 0..a {
            for l in 0..h {
                let c = r * h + l;
                let gj = if c < gi { c } else { c + 1 };
                if gj > gi {
                    // The peer router in gj is the one whose channel maps
                    // back to gi: channel index is gi (since gi < gj).
                    let peer_channel = gi;
                    let peer_router = peer_channel / h;
                    edges.push((idx(gi, r), idx(gj, peer_router)));
                }
            }
        }
    }

    Topology::from_edges(
        TopologyKind::Dragonfly { h },
        format!("df h={h}"),
        nr,
        h.max(1),
        edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_dragonfly_counts() {
        let d = dragonfly(2);
        // a = 4, g = 9, N_r = 36, p = 2 -> N = 72.
        assert_eq!(d.router_count(), 36);
        assert_eq!(d.node_count(), 72);
        // Radix: (a - 1) intra + h global = 3 + 2 = 5.
        assert!(d.is_regular());
        assert_eq!(d.network_radix(), 5);
    }

    #[test]
    fn diameter_is_three() {
        for h in [1, 2, 3] {
            let d = dragonfly(h);
            assert!(d.diameter() <= 3, "h = {h}: diameter {}", d.diameter());
            if h > 1 {
                assert_eq!(d.diameter(), 3, "h = {h}");
            }
        }
    }

    #[test]
    fn one_cable_between_every_two_groups() {
        let h = 2;
        let a = 2 * h;
        let d = dragonfly(h);
        let g = 2 * h * h + 1;
        for g1 in 0..g {
            for g2 in g1 + 1..g {
                let cables = d
                    .links()
                    .filter(|&(x, y)| {
                        let gx = x.index() / a;
                        let gy = y.index() / a;
                        (gx == g1 && gy == g2) || (gx == g2 && gy == g1)
                    })
                    .count();
                assert_eq!(cables, 1, "groups ({g1}, {g2})");
            }
        }
    }

    #[test]
    fn dragonfly_has_more_routers_than_slim_fly_at_similar_n() {
        // §2.1: SF reduces router count by ≈25% vs. a DF of comparable N.
        let df = dragonfly(3); // N_r = 6 * 19 = 114, N = 342
        let sf = Topology::slim_noc(7, 4).unwrap(); // N_r = 98, N = 392
        assert!(df.router_count() as f64 > sf.router_count() as f64 * 1.1);
        assert!(sf.network_radix() > df.network_radix());
    }
}
