//! Edge-cut partitioning of the router graph.
//!
//! The sharded simulation engine assigns every router to exactly one
//! shard and pays one boundary message per flit (plus one per credit)
//! crossing the cut, so the partitioner's job is to keep parts balanced
//! — the lockstep window barrier waits for the slowest shard — while
//! heuristically shrinking the cut. A deterministic greedy BFS growth
//! does both well enough on the low-diameter graphs this repo cares
//! about, and determinism is non-negotiable: the same topology and
//! shard count must produce the same partition on every run, or the
//! sharded engine's bit-exactness contract falls apart.

use crate::{bfs_from, BfsControl, RouterId, Topology};

impl Topology {
    /// Partitions the routers into `parts` balanced, BFS-contiguous
    /// groups; returns the part index of each router.
    ///
    /// Part sizes differ by at most one (`nr mod parts` parts get one
    /// extra router), every part is non-empty when `parts ≤ nr`, and
    /// the result is fully deterministic — growth order is fixed by
    /// router index and the sorted adjacency lists.
    ///
    /// `parts` is clamped to `1..=router_count()`.
    #[must_use]
    pub fn partition(&self, parts: usize) -> Vec<usize> {
        let nr = self.router_count();
        let parts = parts.clamp(1, nr.max(1));
        let mut assign = vec![usize::MAX; nr];
        let (base, extra) = (nr / parts, nr % parts);
        for part in 0..parts {
            let target = base + usize::from(part < extra);
            let mut size = 0;
            while size < target {
                // Grow from the lowest-index unassigned router —
                // re-seeds here when the current frontier dies out
                // (disconnected graph or fully surrounded part).
                let Some(seed) = (0..nr).find(|&r| assign[r] == usize::MAX) else {
                    break;
                };
                bfs_from(
                    nr,
                    RouterId(seed),
                    |r| self.neighbors(r),
                    |r, _| {
                        if assign[r.index()] != usize::MAX {
                            return BfsControl::Prune; // claimed by an earlier part
                        }
                        assign[r.index()] = part;
                        size += 1;
                        if size < target {
                            BfsControl::Descend
                        } else {
                            BfsControl::Stop
                        }
                    },
                );
            }
        }
        assign
    }

    /// Counts the undirected links whose endpoints sit in different
    /// parts of `assign` — the boundary-message cost of a partition.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len() != router_count()`.
    #[must_use]
    pub fn edge_cut(&self, assign: &[usize]) -> usize {
        assert_eq!(assign.len(), self.router_count(), "one part per router");
        self.links()
            .filter(|&(a, b)| assign[a.index()] != assign[b.index()])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(assign: &[usize], parts: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; parts];
        for &p in assign {
            sizes[p] += 1;
        }
        sizes
    }

    #[test]
    fn parts_are_balanced_and_cover_every_router() {
        for parts in [1, 2, 3, 4, 7] {
            let t = Topology::slim_noc(5, 1).unwrap(); // 50 routers
            let assign = t.partition(parts);
            assert_eq!(assign.len(), 50);
            let sizes = sizes(&assign, parts);
            assert_eq!(sizes.iter().sum::<usize>(), 50);
            let (min, max) = (sizes.iter().min(), sizes.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1, "parts={parts}: {sizes:?}");
        }
    }

    #[test]
    fn single_part_has_no_cut() {
        let t = Topology::mesh(4, 4, 1);
        let assign = t.partition(1);
        assert!(assign.iter().all(|&p| p == 0));
        assert_eq!(t.edge_cut(&assign), 0);
    }

    #[test]
    fn bfs_growth_beats_striping_on_a_mesh() {
        // Contiguous halves of an 8x8 mesh cut ~8 links; assigning
        // routers round-robin cuts nearly every link. The heuristic
        // must land close to the former.
        let t = Topology::mesh(8, 8, 1);
        let grown = t.edge_cut(&t.partition(2));
        let striped: Vec<usize> = (0..64).map(|r| r % 2).collect();
        assert!(
            grown * 4 <= t.edge_cut(&striped),
            "grown cut {grown} vs striped {}",
            t.edge_cut(&striped)
        );
    }

    #[test]
    fn partition_is_deterministic() {
        let t = Topology::slim_noc(7, 1).unwrap();
        assert_eq!(t.partition(4), t.partition(4));
    }

    #[test]
    fn more_parts_than_routers_clamps() {
        let t = Topology::mesh(2, 2, 1);
        let assign = t.partition(16);
        assert_eq!(assign.len(), 4);
        let mut seen = assign.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "one router per part");
    }
}
