//! Folded Clos (2-level fat tree) — the hierarchical/indirect comparison
//! point of §5.5.

use crate::{Topology, TopologyKind};

/// Leaf routers come first (indices `0..leaves`), spines after
/// (`leaves..leaves+spines`). Nodes attach only to leaves.
pub(crate) fn folded_clos(leaves: usize, spines: usize, concentration: usize) -> Topology {
    assert!(leaves > 0 && spines > 0, "clos dimensions must be positive");
    assert!(concentration > 0, "concentration must be positive");
    let mut edges = Vec::new();
    for l in 0..leaves {
        for s in 0..spines {
            edges.push((l, leaves + s));
        }
    }
    Topology::from_edges(
        TopologyKind::FoldedClos { leaves, spines },
        format!("clos {leaves}l+{spines}s"),
        leaves + spines,
        concentration,
        edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, RouterId};

    #[test]
    fn clos_structure() {
        let c = folded_clos(10, 5, 4);
        assert_eq!(c.router_count(), 15);
        assert_eq!(c.node_count(), 40); // nodes only on leaves
        assert_eq!(c.diameter(), 2);
        // Leaves have degree = spines, spines have degree = leaves.
        assert_eq!(c.neighbors(RouterId(0)).len(), 5);
        assert_eq!(c.neighbors(RouterId(10)).len(), 10);
    }

    #[test]
    fn nodes_attach_to_leaves_only() {
        let c = folded_clos(4, 2, 3);
        for n in c.nodes() {
            assert!(c.router_of(n).index() < 4);
        }
        assert_eq!(c.router_of(NodeId(11)), RouterId(3));
        assert!(c.nodes_of(RouterId(4)).is_empty(), "spines carry no nodes");
    }
}
