//! Property tests for `Topology::partition` / `Topology::edge_cut`.
//!
//! The sharded simulation engine assigns one shard per part, so these
//! invariants are load-bearing: a router assigned to no part (or two)
//! would be simulated zero or two times, unbalanced parts would stall
//! the lockstep window barrier, and any nondeterminism would break the
//! engine's bit-exactness contract across reruns.

use proptest::prelude::*;
use snoc_topology::Topology;

/// Expands one arbitrary-but-deterministic topology from an integer
/// seed, spanning every constructor family (the vendored proptest only
/// has range strategies, so structured values come from integers).
fn topology_from(bits: u64) -> Topology {
    let x = 2 + (bits >> 8) % 5; // 2..=6
    let y = 2 + (bits >> 16) % 4; // 2..=5
    let c = 1 + (bits >> 24) % 3; // 1..=3
    let (x, y, c) = (x as usize, y as usize, c as usize);
    match bits % 7 {
        0 => Topology::slim_noc([3, 5, 7][x % 3], c).expect("prime-power q"),
        1 => Topology::mesh(x, y, c),
        2 => Topology::torus(x, y, c),
        3 => Topology::flattened_butterfly(x, y, c),
        4 => Topology::partitioned_fbf(2, 1, x, y, c),
        5 => Topology::dragonfly(1 + x % 3),
        _ => Topology::folded_clos(x + y, x, c),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_router_lands_in_exactly_one_balanced_part(
        topo_bits in 0u64..u64::MAX,
        parts_bits in 0u64..u64::MAX,
    ) {
        let topo = topology_from(topo_bits);
        let nr = topo.router_count();
        // Deliberately includes 0 and > nr to exercise the clamp.
        let parts = (parts_bits % (nr as u64 + 2)) as usize;
        let assign = topo.partition(parts);
        let clamped = parts.clamp(1, nr);

        // Exactly-once coverage: one entry per router, every entry a
        // valid part index — so each router is simulated exactly once.
        prop_assert_eq!(assign.len(), nr);
        let mut sizes = vec![0usize; clamped];
        for (r, &p) in assign.iter().enumerate() {
            prop_assert!(p < clamped, "router {r} got out-of-range part {p}");
            sizes[p] += 1;
        }

        // Balance: all parts non-empty, sizes within ±1 of each other.
        prop_assert_eq!(sizes.iter().sum::<usize>(), nr);
        let (min, max) = (sizes.iter().min(), sizes.iter().max());
        prop_assert!(
            max.expect("nonempty") - min.expect("nonempty") <= 1,
            "unbalanced parts: {:?}", sizes
        );
    }

    #[test]
    fn edge_cut_matches_a_brute_force_recount(
        topo_bits in 0u64..u64::MAX,
        parts_bits in 0u64..u64::MAX,
    ) {
        let topo = topology_from(topo_bits);
        let nr = topo.router_count();
        let parts = 1 + (parts_bits % nr as u64) as usize;
        let assign = topo.partition(parts);

        let brute = topo
            .links()
            .filter(|&(a, b)| assign[a.index()] != assign[b.index()])
            .count();
        prop_assert_eq!(topo.edge_cut(&assign), brute);

        // Sanity bound: the cut can never exceed the link count, and a
        // single-part partition cuts nothing.
        prop_assert!(brute <= topo.links().count());
        prop_assert_eq!(topo.edge_cut(&topo.partition(1)), 0);
    }

    #[test]
    fn partition_is_deterministic_across_calls_and_rebuilds(
        topo_bits in 0u64..u64::MAX,
        parts_bits in 0u64..u64::MAX,
    ) {
        let topo = topology_from(topo_bits);
        let parts = 1 + (parts_bits % topo.router_count() as u64) as usize;
        // Same topology object, repeated calls.
        prop_assert_eq!(topo.partition(parts), topo.partition(parts));
        // Freshly rebuilt topology from the same seed — the contract
        // the sharded engine actually relies on across processes.
        prop_assert_eq!(topology_from(topo_bits).partition(parts), topo.partition(parts));
    }
}
