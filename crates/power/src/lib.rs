//! Analytic area, power and energy model — the reproduction's stand-in
//! for MIT DSENT (§5.1; substitution rationale in `DESIGN.md` §4).
//!
//! The model mirrors the structural cost terms the paper's analysis
//! rests on:
//!
//! - **buffers**: SRAM area and leakage proportional to buffered bits,
//!   access energy per read/write;
//! - **crossbars**: matrix crossbar area `(k·w)²·pitch²` — the radix-
//!   squared term that makes high-radix FBFs expensive;
//! - **allocators**: `k²·|VC|²` control logic;
//! - **wires**: area, repeater leakage and switching energy proportional
//!   to wire millimetres, derived from the layout's Manhattan lengths.
//!
//! Outputs are broken down the way the paper plots them (routers vs.
//! wires; buffers vs. crossbars vs. wires for dynamic power) and feed
//! the combined metrics of §5.4: throughput/power and energy–delay
//! product.
//!
//! # Example
//!
//! ```
//! use snoc_topology::Topology;
//! use snoc_layout::Layout;
//! use snoc_power::{PowerModel, TechNode};
//!
//! let sn = Topology::slim_noc(5, 4)?;
//! let fbf = Topology::flattened_butterfly(10, 5, 4);
//! let model = PowerModel::new(TechNode::N45);
//! let a_sn = model.area(&sn, &Layout::natural(&sn), 150);
//! let a_fbf = model.area(&fbf, &Layout::natural(&fbf), 150);
//! // The headline claim: Slim NoC needs much less area than FBF.
//! assert!(a_sn.total_mm2() < a_fbf.total_mm2());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snoc_layout::TechNode;

use snoc_layout::Layout;
use snoc_sim::{ActivityCounters, SimReport};
use snoc_topology::Topology;

/// Technology-dependent circuit constants.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TechConstants {
    /// Global-layer wire pitch in µm.
    wire_pitch_um: f64,
    /// SRAM cell area in µm² per bit.
    sram_bit_um2: f64,
    /// Logic/SRAM leakage density in W/mm².
    leakage_w_per_mm2: f64,
    /// Repeated-wire leakage in µW per wire per mm.
    wire_leak_uw_per_mm: f64,
    /// Wire capacitance in pF per mm per wire.
    wire_cap_pf_per_mm: f64,
    /// SRAM access energy in pJ per bit.
    sram_pj_per_bit: f64,
    /// Crossbar traversal energy in pJ per bit per port.
    xbar_pj_per_bit_port: f64,
    /// Allocator grant energy in pJ per grant per port (the arbiter
    /// trees scale with radix; a few percent of a crossbar traversal).
    alloc_pj_per_grant_port: f64,
}

/// Fraction of a wire bundle's metal footprint charged to the silicon
/// area budget (repeaters, drivers and via stacks; the metal itself
/// lives on dedicated routing layers above the logic).
const WIRE_AREA_FACTOR: f64 = 0.10;

fn constants(tech: TechNode) -> TechConstants {
    match tech {
        TechNode::N45 => TechConstants {
            wire_pitch_um: 0.6,
            sram_bit_um2: 0.50,
            leakage_w_per_mm2: 0.050,
            wire_leak_uw_per_mm: 3.0,
            wire_cap_pf_per_mm: 0.020,
            sram_pj_per_bit: 0.150,
            xbar_pj_per_bit_port: 0.025,
            alloc_pj_per_grant_port: 0.15,
        },
        TechNode::N22 => TechConstants {
            wire_pitch_um: 0.30,
            sram_bit_um2: 0.12,
            leakage_w_per_mm2: 0.060,
            wire_leak_uw_per_mm: 2.2,
            wire_cap_pf_per_mm: 0.018,
            sram_pj_per_bit: 0.060,
            xbar_pj_per_bit_port: 0.010,
            alloc_pj_per_grant_port: 0.06,
        },
        TechNode::N11 => TechConstants {
            wire_pitch_um: 0.15,
            sram_bit_um2: 0.030,
            leakage_w_per_mm2: 0.070,
            wire_leak_uw_per_mm: 1.6,
            wire_cap_pf_per_mm: 0.016,
            sram_pj_per_bit: 0.025,
            xbar_pj_per_bit_port: 0.004,
            alloc_pj_per_grant_port: 0.025,
        },
    }
}

/// Area breakdown in mm², following the paper's plot categories.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaReport {
    /// Router buffers (intermediate-layer SRAM; "i-routers").
    pub buffers_mm2: f64,
    /// Crossbars (active layer; the dominant "a-routers" term).
    pub crossbars_mm2: f64,
    /// Allocators and arbiters (active layer).
    pub allocators_mm2: f64,
    /// Router-to-router wires (global layer; "RRg-wires").
    pub rr_wires_mm2: f64,
    /// Router-to-node wires ("RNg-wires").
    pub rn_wires_mm2: f64,
    /// Endpoint count for per-node normalization.
    pub nodes: usize,
}

impl AreaReport {
    /// Total router area (buffers + crossbars + allocators).
    #[must_use]
    pub fn routers_mm2(&self) -> f64 {
        self.buffers_mm2 + self.crossbars_mm2 + self.allocators_mm2
    }

    /// Total wire area.
    #[must_use]
    pub fn wires_mm2(&self) -> f64 {
        self.rr_wires_mm2 + self.rn_wires_mm2
    }

    /// Total network area.
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.routers_mm2() + self.wires_mm2()
    }

    /// Area per node in cm² (the unit of Figs. 16–17).
    #[must_use]
    pub fn per_node_cm2(&self) -> f64 {
        self.total_mm2() / 100.0 / self.nodes.max(1) as f64
    }
}

/// Static (leakage) power breakdown in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticPowerReport {
    /// Routers and crossbars.
    pub routers_w: f64,
    /// Repeated wires.
    pub wires_w: f64,
    /// Endpoint count for per-node normalization.
    pub nodes: usize,
}

impl StaticPowerReport {
    /// Total static power.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.routers_w + self.wires_w
    }

    /// Static power per node in watts.
    #[must_use]
    pub fn per_node_w(&self) -> f64 {
        self.total_w() / self.nodes.max(1) as f64
    }
}

/// Dynamic power breakdown in watts, from simulation activity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DynamicPowerReport {
    /// Buffer read/write energy.
    pub buffers_w: f64,
    /// Crossbar traversal energy.
    pub crossbars_w: f64,
    /// Allocator grant energy (switch-allocation arbiters).
    pub allocators_w: f64,
    /// Wire switching energy.
    pub wires_w: f64,
    /// Endpoint count for per-node normalization.
    pub nodes: usize,
}

impl DynamicPowerReport {
    /// Total dynamic power.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.buffers_w + self.crossbars_w + self.allocators_w + self.wires_w
    }

    /// Dynamic power per node in watts.
    #[must_use]
    pub fn per_node_w(&self) -> f64 {
        self.total_w() / self.nodes.max(1) as f64
    }
}

/// Combined evaluation of one simulated configuration (§5.4 metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Area breakdown.
    pub area: AreaReport,
    /// Static power breakdown.
    pub static_power: StaticPowerReport,
    /// Dynamic power breakdown.
    pub dynamic_power: DynamicPowerReport,
    /// Accepted throughput in flits/cycle (network-wide).
    pub throughput_flits_per_cycle: f64,
    /// Average packet latency in seconds.
    pub latency_s: f64,
    /// Router cycle time in seconds.
    pub cycle_time_s: f64,
    /// Flits delivered in the measurement window (energy-per-flit
    /// denominator).
    pub delivered_flits: u64,
    /// Length of the measurement window in cycles.
    pub measured_cycles: u64,
}

impl PowerReport {
    /// Total power (static + dynamic) in watts.
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.static_power.total_w() + self.dynamic_power.total_w()
    }

    /// Throughput per power in flits/J — Table 5's metric ("the number
    /// of flits delivered in a cycle divided by the power consumed").
    ///
    /// # Examples
    ///
    /// ```
    /// use snoc_power::{AreaReport, DynamicPowerReport, PowerReport, StaticPowerReport};
    ///
    /// // 2 flits/cycle at 2 GHz is 4e9 flits/s; at 1 W total power the
    /// // network delivers 4e9 flits per joule.
    /// let report = PowerReport {
    ///     area: AreaReport::default(),
    ///     static_power: StaticPowerReport { routers_w: 0.3, wires_w: 0.2, nodes: 4 },
    ///     dynamic_power: DynamicPowerReport {
    ///         buffers_w: 0.25,
    ///         crossbars_w: 0.15,
    ///         allocators_w: 0.05,
    ///         wires_w: 0.05,
    ///         nodes: 4,
    ///     },
    ///     throughput_flits_per_cycle: 2.0,
    ///     latency_s: 10e-9,
    ///     cycle_time_s: 0.5e-9,
    ///     delivered_flits: 4_000,
    ///     measured_cycles: 2_000,
    /// };
    /// assert!((report.throughput_per_power() - 4.0e9).abs() < 1.0);
    /// ```
    #[must_use]
    pub fn throughput_per_power(&self) -> f64 {
        if self.total_power_w() == 0.0 {
            0.0
        } else {
            self.throughput_flits_per_cycle / self.cycle_time_s / self.total_power_w()
        }
    }

    /// Network energy spent per delivered flit, in joules: total power
    /// integrated over the measurement window divided by the flits that
    /// window delivered. Positive and finite even at zero load, where
    /// it degrades to the window's (leakage-dominated) energy bill.
    #[must_use]
    pub fn energy_per_flit(&self) -> f64 {
        let window_s = self.measured_cycles.max(1) as f64 * self.cycle_time_s;
        self.total_power_w() * window_s / self.delivered_flits.max(1) as f64
    }

    /// Energy–delay product in J·s (Fig. 18 normalizes this to FBF):
    /// network energy over one second of execution times average packet
    /// latency.
    #[must_use]
    pub fn energy_delay(&self) -> f64 {
        self.total_power_w() * self.latency_s
    }
}

/// The analytic power/area model for one technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    tech: TechNode,
    /// Link width in bits (the paper uses 128-bit links).
    pub link_bits: usize,
    /// Router cycle time in nanoseconds (0.4/0.5/0.6 per radix class).
    pub cycle_time_ns: f64,
}

impl PowerModel {
    /// Creates a model at the paper's defaults: 128-bit links, 0.5 ns
    /// cycle time.
    #[must_use]
    pub fn new(tech: TechNode) -> Self {
        PowerModel {
            tech,
            link_bits: 128,
            cycle_time_ns: 0.5,
        }
    }

    /// Sets the router cycle time in nanoseconds.
    #[must_use]
    pub fn with_cycle_time(mut self, ns: f64) -> Self {
        self.cycle_time_ns = ns;
        self
    }

    /// The technology node.
    #[must_use]
    pub fn tech(&self) -> TechNode {
        self.tech
    }

    /// Total router-to-router wire length in mm for a placed topology.
    #[must_use]
    pub fn total_wire_mm(&self, topo: &Topology, layout: &Layout) -> f64 {
        let tile_mm = self.tile_side_mm(topo);
        let tiles: usize = topo.links().map(|(a, b)| layout.manhattan(a, b)).sum();
        tiles as f64 * tile_mm
    }

    /// Physical side length of one tile (router + its nodes) in mm.
    #[must_use]
    pub fn tile_side_mm(&self, topo: &Topology) -> f64 {
        (self.tech.core_area_mm2() * topo.concentration().max(1) as f64).sqrt()
    }

    /// Area model. `buffer_flits_per_router` is the total buffering in
    /// one router (edge buffers from `snoc_layout::BufferModel`, or
    /// `δ_cb + 2k'·|VC|` for CBRs).
    #[must_use]
    pub fn area(
        &self,
        topo: &Topology,
        layout: &Layout,
        buffer_flits_per_router: usize,
    ) -> AreaReport {
        let c = constants(self.tech);
        let nr = topo.router_count() as f64;
        let k = topo.router_radix() as f64;
        let w = self.link_bits as f64;

        let buffer_bits = buffer_flits_per_router as f64 * w;
        let buffers_mm2 = nr * buffer_bits * c.sram_bit_um2 * 1e-6;
        // Matrix crossbar: (k·w · pitch)².
        let xbar_side_mm = k * w * c.wire_pitch_um * 1e-3;
        let crossbars_mm2 = nr * xbar_side_mm * xbar_side_mm;
        // Allocator: k² · VC² grant cells (VC fixed at 2 in the model;
        // the term is small either way).
        let allocators_mm2 = nr * k * k * 4.0 * 40.0 * c.sram_bit_um2 * 1e-6;

        let bundle_mm_per_mm = w * c.wire_pitch_um * 1e-3 * WIRE_AREA_FACTOR;
        let rr_wires_mm2 = self.total_wire_mm(topo, layout) * bundle_mm_per_mm;
        // Router-to-node wires: each node sits within its tile, average
        // half a tile of wiring each way.
        let rn_mm = topo.node_count() as f64 * self.tile_side_mm(topo) * 0.5;
        let rn_wires_mm2 = rn_mm * bundle_mm_per_mm;

        AreaReport {
            buffers_mm2,
            crossbars_mm2,
            allocators_mm2,
            rr_wires_mm2,
            rn_wires_mm2,
            nodes: topo.node_count(),
        }
    }

    /// Static (leakage) power from the area breakdown.
    #[must_use]
    pub fn static_power(
        &self,
        topo: &Topology,
        layout: &Layout,
        area: &AreaReport,
    ) -> StaticPowerReport {
        let c = constants(self.tech);
        let scale = self.tech.voltage(); // leakage roughly tracks V
        let routers_w = area.routers_mm2() * c.leakage_w_per_mm2 * scale;
        let wire_mm = self.total_wire_mm(topo, layout);
        let wires_w = wire_mm * self.link_bits as f64 * c.wire_leak_uw_per_mm * 1e-6 * scale;
        StaticPowerReport {
            routers_w,
            wires_w,
            nodes: topo.node_count(),
        }
    }

    /// Dynamic power from simulation activity over `cycles` cycles.
    #[must_use]
    pub fn dynamic_power(
        &self,
        topo: &Topology,
        activity: &ActivityCounters,
        cycles: u64,
    ) -> DynamicPowerReport {
        let c = constants(self.tech);
        let w = self.link_bits as f64;
        let v = self.tech.voltage();
        let vscale = v * v; // energy ∝ V² (constants are 1 V-referred)
        let time_s = cycles.max(1) as f64 * self.cycle_time_ns * 1e-9;
        let tile_mm = self.tile_side_mm(topo);

        // Buffers: measured reads and writes (edge buffers and CBR
        // staging) plus central-buffer accesses. `buffer_accesses`
        // (read+write pairs) is the legacy aggregate kept for
        // counter-invariant checks; the energy charge uses the exact
        // per-event counters.
        let buf_events = (activity.buffer_reads
            + activity.buffer_writes
            + activity.cb_writes
            + activity.cb_reads) as f64;
        let buffers_j = buf_events * w * c.sram_pj_per_bit * 1e-12 * vscale;

        let k = topo.router_radix() as f64;
        let xbar_j =
            activity.crossbar_traversals as f64 * w * k * c.xbar_pj_per_bit_port * 1e-12 * vscale;

        // Allocators: the arbiter trees burn energy per successful
        // grant, scaling with radix (small next to the crossbar term).
        let alloc_j = activity.alloc_grants as f64 * k * c.alloc_pj_per_grant_port * 1e-12 * vscale;

        // Wires: energy per flit per mm.
        let wire_mm_travelled = activity.wire_flit_tiles as f64 * tile_mm;
        let wires_j = wire_mm_travelled * w * c.wire_cap_pf_per_mm * 1e-12 * vscale;

        DynamicPowerReport {
            buffers_w: buffers_j / time_s,
            crossbars_w: xbar_j / time_s,
            allocators_w: alloc_j / time_s,
            wires_w: wires_j / time_s,
            nodes: topo.node_count(),
        }
    }

    /// One-stop evaluation of a simulated configuration from caller-
    /// supplied activity (the analytic entry point; identical to
    /// [`PowerModel::evaluate_from_sim`] for the same report).
    #[must_use]
    pub fn evaluate(
        &self,
        topo: &Topology,
        layout: &Layout,
        buffer_flits_per_router: usize,
        report: &SimReport,
    ) -> PowerReport {
        self.evaluate_from_sim(report, topo, layout, buffer_flits_per_router)
    }

    /// The measured-activity path of the energy pipeline: converts the
    /// activity factors a simulation *measured* (buffer reads/writes,
    /// crossbar traversals, allocator grants, link flit·tiles) into
    /// dynamic + static power, energy per flit, and the energy–delay
    /// product — no analytic activity guesses anywhere.
    ///
    /// `buffer_flits_per_router` sizes the buffer area/leakage terms
    /// (use `Setup::buffer_flits_per_router` for the §5.1 presets).
    #[must_use]
    pub fn evaluate_from_sim(
        &self,
        report: &SimReport,
        topo: &Topology,
        layout: &Layout,
        buffer_flits_per_router: usize,
    ) -> PowerReport {
        let area = self.area(topo, layout, buffer_flits_per_router);
        let static_power = self.static_power(topo, layout, &area);
        let dynamic_power = self.dynamic_power(topo, &report.activity, report.measured_cycles);
        PowerReport {
            area,
            static_power,
            dynamic_power,
            throughput_flits_per_cycle: report.throughput() * report.nodes as f64,
            latency_s: report.avg_packet_latency() * self.cycle_time_ns * 1e-9,
            cycle_time_s: self.cycle_time_ns * 1e-9,
            delivered_flits: report.delivered_flits,
            measured_cycles: report.measured_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_layout::{BufferModel, BufferSpec, SnLayout};
    use snoc_sim::{SimConfig, Simulator};
    use snoc_traffic::TrafficPattern;

    fn sn200() -> (Topology, Layout) {
        let t = Topology::slim_noc(5, 4).unwrap();
        let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
        (t, l)
    }

    fn fbf200() -> (Topology, Layout) {
        let t = Topology::flattened_butterfly(10, 5, 4);
        let l = Layout::natural(&t);
        (t, l)
    }

    fn buffer_flits(t: &Topology, l: &Layout) -> usize {
        BufferModel::edge_buffers(t, l, BufferSpec::standard()).average_per_router() as usize
    }

    #[test]
    fn sn_area_below_fbf_by_paper_margin() {
        // Fig. 15b / §6: SN reduces area over FBF by roughly a third.
        let model = PowerModel::new(TechNode::N45);
        let (sn, sn_l) = sn200();
        let (fbf, fbf_l) = fbf200();
        let a_sn = model.area(&sn, &sn_l, buffer_flits(&sn, &sn_l));
        let a_fbf = model.area(&fbf, &fbf_l, buffer_flits(&fbf, &fbf_l));
        let reduction = 1.0 - a_sn.total_mm2() / a_fbf.total_mm2();
        assert!(
            (0.15..0.75).contains(&reduction),
            "SN vs FBF area reduction {reduction:.2}"
        );
    }

    #[test]
    fn low_radix_networks_have_least_router_area() {
        let model = PowerModel::new(TechNode::N45);
        let (sn, sn_l) = sn200();
        let t2d = Topology::torus(10, 5, 4);
        let t2d_l = Layout::natural(&t2d);
        let a_sn = model.area(&sn, &sn_l, buffer_flits(&sn, &sn_l));
        let a_t2d = model.area(&t2d, &t2d_l, buffer_flits(&t2d, &t2d_l));
        assert!(
            a_t2d.total_mm2() < a_sn.total_mm2(),
            "torus {} must undercut SN {}",
            a_t2d.total_mm2(),
            a_sn.total_mm2()
        );
    }

    #[test]
    fn per_node_area_matches_paper_magnitude() {
        // Figs. 16a: area/node around 1e-3..4e-3 cm² at 45 nm.
        let model = PowerModel::new(TechNode::N45);
        let (sn, sn_l) = sn200();
        let a = model.area(&sn, &sn_l, buffer_flits(&sn, &sn_l));
        let per_node = a.per_node_cm2();
        assert!((1e-4..1e-2).contains(&per_node), "area/node {per_node} cm²");
    }

    #[test]
    fn static_power_ordering_matches_paper() {
        // Fig. 15c: FBF > SN > T2D in static power.
        let model = PowerModel::new(TechNode::N45);
        let (sn, sn_l) = sn200();
        let (fbf, fbf_l) = fbf200();
        let t2d = Topology::torus(10, 5, 4);
        let t2d_l = Layout::natural(&t2d);
        let p = |t: &Topology, l: &Layout| {
            let a = model.area(t, l, buffer_flits(t, l));
            model.static_power(t, l, &a).total_w()
        };
        let (p_sn, p_fbf, p_t2d) = (p(&sn, &sn_l), p(&fbf, &fbf_l), p(&t2d, &t2d_l));
        assert!(p_fbf > p_sn, "fbf {p_fbf} > sn {p_sn}");
        assert!(p_sn > p_t2d, "sn {p_sn} > t2d {p_t2d}");
        // §6: SN saves roughly half of FBF's static power.
        let saving = 1.0 - p_sn / p_fbf;
        assert!((0.2..0.8).contains(&saving), "saving {saving:.2}");
    }

    #[test]
    fn smaller_tech_node_shrinks_area() {
        let (sn, sn_l) = sn200();
        let f = buffer_flits(&sn, &sn_l);
        let a45 = PowerModel::new(TechNode::N45).area(&sn, &sn_l, f);
        let a22 = PowerModel::new(TechNode::N22).area(&sn, &sn_l, f);
        assert!(a22.total_mm2() < a45.total_mm2());
        // Wires shrink more slowly than logic: their share grows at 22 nm
        // (the paper's observation in §5.5).
        let share45 = a45.wires_mm2() / a45.total_mm2();
        let share22 = a22.wires_mm2() / a22.total_mm2();
        assert!(share22 > share45, "wire share {share22} vs {share45}");
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let (sn, _) = sn200();
        let model = PowerModel::new(TechNode::N45);
        let a1 = ActivityCounters {
            buffer_reads: 1000,
            buffer_writes: 1000,
            crossbar_traversals: 1000,
            alloc_grants: 1000,
            wire_flit_tiles: 4000,
            ..Default::default()
        };
        let mut a2 = a1;
        a2.buffer_reads *= 2;
        a2.buffer_writes *= 2;
        a2.crossbar_traversals *= 2;
        a2.alloc_grants *= 2;
        a2.wire_flit_tiles *= 2;
        let p1 = model.dynamic_power(&sn, &a1, 10_000).total_w();
        let p2 = model.dynamic_power(&sn, &a2, 10_000).total_w();
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_is_monotone_in_each_activity_factor() {
        // Physics invariant: more activity of *any* kind never lowers
        // power, and every modeled component contributes.
        let (sn, _) = sn200();
        let model = PowerModel::new(TechNode::N45);
        let base = ActivityCounters {
            buffer_reads: 500,
            buffer_writes: 500,
            cb_writes: 100,
            cb_reads: 100,
            crossbar_traversals: 700,
            alloc_grants: 700,
            wire_flit_tiles: 2_000,
            ..Default::default()
        };
        let p0 = model.dynamic_power(&sn, &base, 10_000).total_w();
        assert!(p0 > 0.0);
        let bumps: [fn(&mut ActivityCounters); 6] = [
            |a| a.buffer_reads += 1_000,
            |a| a.buffer_writes += 1_000,
            |a| a.cb_writes += 1_000,
            |a| a.crossbar_traversals += 1_000,
            |a| a.alloc_grants += 1_000,
            |a| a.wire_flit_tiles += 1_000,
        ];
        for (i, bump) in bumps.iter().enumerate() {
            let mut a = base;
            bump(&mut a);
            let p = model.dynamic_power(&sn, &a, 10_000).total_w();
            assert!(p > p0, "factor {i}: {p} must exceed {p0}");
        }
        // The allocator term stays a small correction, not a dominator.
        let d = model.dynamic_power(&sn, &base, 10_000);
        assert!(d.allocators_w < 0.25 * d.total_w());
    }

    #[test]
    fn energy_per_flit_positive_and_finite_at_zero_load() {
        // A window that delivered nothing still burns leakage; the
        // metric degrades to the window's energy bill, never NaN/inf.
        let (sn, sn_l) = sn200();
        let model = PowerModel::new(TechNode::N45);
        let mut idle = Simulator::build_with_layout(&sn, &sn_l, &SimConfig::default()).unwrap();
        let empty = idle.run_synthetic(TrafficPattern::Random, 0.0, 0, 500);
        assert_eq!(empty.delivered_flits, 0, "true zero load");
        let r = model.evaluate_from_sim(&empty, &sn, &sn_l, buffer_flits(&sn, &sn_l));
        assert!(r.energy_per_flit() > 0.0);
        assert!(r.energy_per_flit().is_finite());
        // And at (low) load it is per-flit: more flits, less J/flit.
        let mut sim = Simulator::build_with_layout(&sn, &sn_l, &SimConfig::default()).unwrap();
        let rep = sim.run_synthetic(TrafficPattern::Random, 0.05, 300, 2_000);
        let loaded = model.evaluate_from_sim(&rep, &sn, &sn_l, buffer_flits(&sn, &sn_l));
        assert!(loaded.energy_per_flit() > 0.0);
        assert!(loaded.energy_per_flit() < r.energy_per_flit());
    }

    #[test]
    fn tech_shrink_scales_area_and_static_power_down() {
        // TechNode shrink invariants: both area and leakage fall from
        // 45 nm to 22 nm to 11 nm for the same design, and per-node
        // static power falls with them.
        let (sn, sn_l) = sn200();
        let f = buffer_flits(&sn, &sn_l);
        let eval = |tech: TechNode| {
            let m = PowerModel::new(tech);
            let a = m.area(&sn, &sn_l, f);
            let s = m.static_power(&sn, &sn_l, &a);
            (a.total_mm2(), s.total_w(), s.per_node_w())
        };
        let (a45, s45, pn45) = eval(TechNode::N45);
        let (a22, s22, pn22) = eval(TechNode::N22);
        let (a11, s11, _) = eval(TechNode::N11);
        assert!(a22 < a45 && a11 < a22, "area: {a45} > {a22} > {a11}");
        assert!(s22 < s45 && s11 < s22, "static: {s45} > {s22} > {s11}");
        assert!(pn22 < pn45);
        // Logic leakage tracks area × density × voltage.
        let c45 = constants(TechNode::N45);
        let c22 = constants(TechNode::N22);
        let a45r = PowerModel::new(TechNode::N45).area(&sn, &sn_l, f);
        let a22r = PowerModel::new(TechNode::N22).area(&sn, &sn_l, f);
        let expect = (a22r.routers_mm2() * c22.leakage_w_per_mm2 * TechNode::N22.voltage())
            / (a45r.routers_mm2() * c45.leakage_w_per_mm2 * TechNode::N45.voltage());
        let got = PowerModel::new(TechNode::N22)
            .static_power(&sn, &sn_l, &a22r)
            .routers_w
            / PowerModel::new(TechNode::N45)
                .static_power(&sn, &sn_l, &a45r)
                .routers_w;
        assert!((got - expect).abs() < 1e-12, "router leakage scaling");
    }

    #[test]
    fn evaluate_from_sim_matches_analytic_evaluate() {
        // The measured path and the analytic entry point must agree
        // exactly when fed the same activity.
        let (sn, sn_l) = sn200();
        let mut sim = Simulator::build_with_layout(&sn, &sn_l, &SimConfig::default()).unwrap();
        let rep = sim.run_synthetic(TrafficPattern::Random, 0.08, 300, 2_000);
        let model = PowerModel::new(TechNode::N45).with_cycle_time(0.5);
        let flits = buffer_flits(&sn, &sn_l);
        let from_sim = model.evaluate_from_sim(&rep, &sn, &sn_l, flits);
        let analytic = model.evaluate(&sn, &sn_l, flits, &rep);
        assert_eq!(from_sim, analytic);
        assert!(from_sim.dynamic_power.total_w() > 0.0, "activity measured");
        assert_eq!(from_sim.delivered_flits, rep.delivered_flits);
    }

    #[test]
    fn end_to_end_throughput_per_power_favors_sn_over_fbf() {
        // Table 5's shape: SN beats FBF in throughput/power (modestly)
        // and low-radix nets substantially.
        let run = |topo: &Topology, layout: &Layout, cycle_ns: f64| {
            let mut sim =
                Simulator::build_with_layout(topo, layout, &SimConfig::default()).unwrap();
            let rep = sim.run_synthetic(TrafficPattern::Random, 0.10, 500, 3_000);
            let flits = buffer_flits(topo, layout);
            PowerModel::new(TechNode::N45)
                .with_cycle_time(cycle_ns)
                .evaluate(topo, layout, flits, &rep)
        };
        let (sn, sn_l) = sn200();
        let (fbf, fbf_l) = fbf200();
        let r_sn = run(&sn, &sn_l, 0.5);
        let r_fbf = run(&fbf, &fbf_l, 0.6);
        assert!(
            r_sn.throughput_per_power() > r_fbf.throughput_per_power(),
            "sn {} vs fbf {}",
            r_sn.throughput_per_power(),
            r_fbf.throughput_per_power()
        );
    }

    #[test]
    fn edp_is_positive_and_finite() {
        let (sn, sn_l) = sn200();
        let mut sim = Simulator::build_with_layout(&sn, &sn_l, &SimConfig::default()).unwrap();
        let rep = sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 2_000);
        let r = PowerModel::new(TechNode::N45).evaluate(&sn, &sn_l, buffer_flits(&sn, &sn_l), &rep);
        assert!(r.energy_delay() > 0.0);
        assert!(r.energy_delay().is_finite());
        assert!(r.total_power_w() > 0.0);
    }
}
