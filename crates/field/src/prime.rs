//! Primality testing and prime-power factorization.
//!
//! Slim NoC parameters `q` are always small (the paper analyzes `q ≤ 37`,
//! and all its designs use `q ≤ 9`), so simple trial division is both
//! sufficient and the easiest implementation to audit.

/// Returns `true` if `n` is prime.
///
/// Uses trial division; intended for the small parameters that appear in
/// Slim NoC configurations.
///
/// # Examples
///
/// ```
/// use snoc_field::is_prime;
/// assert!(is_prime(7));
/// assert!(!is_prime(9));
/// assert!(!is_prime(1));
/// ```
#[must_use]
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n.is_multiple_of(2) {
        return false;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Returns all primes strictly below `limit`, in increasing order.
///
/// # Examples
///
/// ```
/// use snoc_field::primes_below;
/// assert_eq!(primes_below(12), vec![2, 3, 5, 7, 11]);
/// ```
#[must_use]
pub fn primes_below(limit: usize) -> Vec<usize> {
    if limit < 3 {
        return Vec::new();
    }
    let mut sieve = vec![true; limit];
    sieve[0] = false;
    sieve[1] = false;
    let mut i = 2;
    while i * i < limit {
        if sieve[i] {
            let mut j = i * i;
            while j < limit {
                sieve[j] = false;
                j += i;
            }
        }
        i += 1;
    }
    sieve
        .iter()
        .enumerate()
        .filter_map(|(n, &p)| if p { Some(n) } else { None })
        .collect()
}

/// If `q = p^n` for a prime `p` and `n >= 1`, returns `(p, n)`.
///
/// Returns `None` when `q` is not a prime power (including `q < 2`).
///
/// # Examples
///
/// ```
/// use snoc_field::factor_prime_power;
/// assert_eq!(factor_prime_power(9), Some((3, 2)));
/// assert_eq!(factor_prime_power(8), Some((2, 3)));
/// assert_eq!(factor_prime_power(7), Some((7, 1)));
/// assert_eq!(factor_prime_power(6), None);
/// ```
#[must_use]
pub fn factor_prime_power(q: usize) -> Option<(usize, usize)> {
    if q < 2 {
        return None;
    }
    // Find the smallest prime divisor, then check q is a pure power of it.
    let mut p = 0;
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            p = d;
            break;
        }
        d += 1;
    }
    if p == 0 {
        // q itself is prime.
        return Some((q, 1));
    }
    let mut rest = q;
    let mut n = 0;
    while rest.is_multiple_of(p) {
        rest /= p;
        n += 1;
    }
    if rest == 1 {
        Some((p, n))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<usize> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn primes_below_matches_is_prime() {
        let sieved = primes_below(200);
        let trial: Vec<usize> = (0..200).filter(|&n| is_prime(n)).collect();
        assert_eq!(sieved, trial);
    }

    #[test]
    fn primes_below_tiny_limits() {
        assert!(primes_below(0).is_empty());
        assert!(primes_below(2).is_empty());
        assert_eq!(primes_below(3), vec![2]);
    }

    #[test]
    fn prime_power_factorizations() {
        assert_eq!(factor_prime_power(2), Some((2, 1)));
        assert_eq!(factor_prime_power(4), Some((2, 2)));
        assert_eq!(factor_prime_power(8), Some((2, 3)));
        assert_eq!(factor_prime_power(9), Some((3, 2)));
        assert_eq!(factor_prime_power(16), Some((2, 4)));
        assert_eq!(factor_prime_power(25), Some((5, 2)));
        assert_eq!(factor_prime_power(27), Some((3, 3)));
        assert_eq!(factor_prime_power(32), Some((2, 5)));
        assert_eq!(factor_prime_power(49), Some((7, 2)));
        assert_eq!(factor_prime_power(121), Some((11, 2)));
    }

    #[test]
    fn non_prime_powers_rejected() {
        for q in [0, 1, 6, 10, 12, 15, 18, 20, 24, 36, 100] {
            assert_eq!(factor_prime_power(q), None, "q = {q}");
        }
    }

    #[test]
    fn all_paper_table2_inputs_are_prime_powers() {
        // Input parameters q from Table 2 of the paper.
        for q in [2, 3, 4, 5, 7, 8, 9] {
            assert!(factor_prime_power(q).is_some(), "q = {q}");
        }
    }
}
