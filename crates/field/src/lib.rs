//! Finite fields for the Slim NoC reproduction.
//!
//! Slim NoC builds its underlying MMS (McKay–Miller–Širáň) graphs from a
//! finite field `GF(q)` where `q` is a prime *or a prime power*. The paper's
//! key construction idea (§3.1, §3.5.2) is that non-prime fields such as
//! `GF(4)`, `GF(8)` and `GF(9)` unlock network sizes that fit on-chip
//! constraints (power-of-two node counts, equal group counts per die side).
//!
//! This crate provides:
//!
//! - [`Gf`]: a concrete finite field with full operation tables — addition,
//!   multiplication, negation, inversion — built either from modular
//!   arithmetic (prime `q`) or from polynomial arithmetic modulo an
//!   irreducible polynomial (prime power `q`), exactly as the paper builds
//!   its Table 3 by hand.
//! - [`SlimFlyParams`]: the `q = 4w + u` parameterization with derived
//!   network quantities (`N_r = 2q²`, `k' = (3q − u)/2`, …).
//! - [`GeneratorSets`]: the generator sets `X` and `X'` that define
//!   intra-subgroup connectivity (Eqs. 8–9 of the paper), with closed forms
//!   for `u ∈ {0, 1}` and a verified search for `u = −1`.
//!
//! # Example
//!
//! ```
//! use snoc_field::{Gf, SlimFlyParams};
//!
//! // GF(9): the non-prime field behind the paper's 1296-node SN-L design.
//! let f9 = Gf::new(9)?;
//! assert_eq!(f9.order(), 9);
//! let xi = f9.generator();
//! // ξ generates the multiplicative group: ξ^8 = 1 and no smaller power is 1.
//! assert_eq!(f9.pow(xi, 8), f9.one());
//!
//! let params = SlimFlyParams::new(9)?;
//! assert_eq!(params.router_count(), 162);
//! assert_eq!(params.network_radix(), 13);
//! # Ok::<(), snoc_field::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gf;
mod poly;
mod prime;
mod slimfly;

pub use error::FieldError;
pub use gf::{Elem, Gf};
pub use poly::Poly;
pub use prime::{factor_prime_power, is_prime, primes_below};
pub use slimfly::{GeneratorSets, SlimFlyParams};
