//! Slim Fly / Slim NoC parameterization and MMS generator sets.
//!
//! The underlying graphs of Slim NoC are the MMS (McKay–Miller–Širáň)
//! graphs: routers are triples `[G | a, b]` with `G ∈ {0, 1}` a subgroup
//! type and `a, b ∈ GF(q)`, connected by Eqs. (8)–(10) of the paper:
//!
//! - `[0|a,b] ⇌ [0|a,b']  ⇔  b − b' ∈ X`
//! - `[1|m,c] ⇌ [1|m,c']  ⇔  c − c' ∈ X'`
//! - `[0|a,b] ⇌ [1|m,c]  ⇔  b = m·a + c`
//!
//! This module computes the parameter set (`q = 4w + u`, `N_r = 2q²`,
//! `k' = (3q − u)/2`) and the generator sets `X`, `X'`.
//!
//! # Generator-set correctness
//!
//! Diameter 2 of the resulting graph is equivalent to the following
//! algebraic conditions, which [`GeneratorSets::generate`] verifies for
//! every field it accepts (a derivation is in this repository's
//! `DESIGN.md`):
//!
//! 1. `X = −X`, `X' = −X'`, and `0 ∉ X ∪ X'` (symmetry);
//! 2. `X ∪ X' = GF(q)*` (cross-type coverage);
//! 3. every `d ∉ X ∪ {0}` lies in `X + X`, and every `d ∉ X' ∪ {0}` lies
//!    in `X' + X'` (intra-subgroup distance-2 coverage).
//!
//! For `u = 1` (`q ≡ 1 mod 4`) the classical closed form is used
//! (`X` = even powers of ξ, `X'` = odd powers); for `u = 0` (`q` a power
//! of two) `X` = even-exponent powers and `X' = ξ·X`; for `u = −1`
//! (`q ≡ 3 mod 4`) a small verified search over symmetric candidate sets
//! is performed.

use crate::error::FieldError;
use crate::gf::{Elem, Gf};
use crate::prime::factor_prime_power;

/// The Slim Fly / Slim NoC structural parameters derived from `q`.
///
/// # Examples
///
/// ```
/// use snoc_field::SlimFlyParams;
///
/// // The paper's SN-L design: q = 9 (a prime power, so a non-prime field).
/// let p = SlimFlyParams::new(9)?;
/// assert_eq!(p.router_count(), 162);
/// assert_eq!(p.network_radix(), 13);
/// assert_eq!(p.group_count(), 9);
/// assert_eq!(p.nodes_with(8), 1296);
/// # Ok::<(), snoc_field::FieldError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlimFlyParams {
    q: usize,
    u: i64,
}

impl SlimFlyParams {
    /// Derives the parameters for a given prime-power `q`.
    ///
    /// `q` must satisfy `q = 4w + u` with `u ∈ {−1, 0, 1}`; all prime
    /// powers qualify except `q = 2`, which the paper nevertheless lists in
    /// Table 2 (`N_r = 8`, `k' = 3`) and which we support as the natural
    /// `u = 0` limit.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NotPrimePower`] if `q` is not a prime power.
    pub fn new(q: usize) -> Result<Self, FieldError> {
        if factor_prime_power(q).is_none() {
            return Err(FieldError::NotPrimePower { q });
        }
        let u = match q % 4 {
            0 => 0,
            1 => 1,
            3 => -1,
            2 if q == 2 => 0,
            _ => return Err(FieldError::NotMmsCompatible { q }),
        };
        Ok(SlimFlyParams { q, u })
    }

    /// The input parameter `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// The residue `u ∈ {−1, 0, 1}` with `q = 4w + u`.
    #[must_use]
    pub fn u(&self) -> i64 {
        self.u
    }

    /// Number of routers `N_r = 2q²`.
    #[must_use]
    pub fn router_count(&self) -> usize {
        2 * self.q * self.q
    }

    /// Network radix `k' = (3q − u)/2` — channels to other routers.
    #[must_use]
    pub fn network_radix(&self) -> usize {
        ((3 * self.q as i64 - self.u) / 2) as usize
    }

    /// Size of each generator set, `|X| = |X'| = (q − u)/2` — the
    /// intra-subgroup degree.
    #[must_use]
    pub fn generator_set_size(&self) -> usize {
        ((self.q as i64 - self.u) / 2) as usize
    }

    /// Number of subgroups (`2q`, each holding `q` routers).
    #[must_use]
    pub fn subgroup_count(&self) -> usize {
        2 * self.q
    }

    /// Routers per subgroup (`q`).
    #[must_use]
    pub fn subgroup_size(&self) -> usize {
        self.q
    }

    /// Number of groups (`q`, each merging one subgroup of each type).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.q
    }

    /// The "ideal" concentration `p = ⌈k'/2⌉` from Table 2 (κ = 0).
    #[must_use]
    pub fn ideal_concentration(&self) -> usize {
        self.network_radix().div_ceil(2)
    }

    /// Total node count `N = N_r · p` for a chosen concentration `p`.
    #[must_use]
    pub fn nodes_with(&self, concentration: usize) -> usize {
        self.router_count() * concentration
    }

    /// The Moore bound on vertices for diameter 2 and radix `k'`:
    /// `MB = k'² + 1`. MMS graphs approach this bound, which is the source
    /// of Slim NoC's scalability (§2.1).
    #[must_use]
    pub fn moore_bound(&self) -> usize {
        let k = self.network_radix();
        k * k + 1
    }

    /// Fraction of the Moore bound achieved: `N_r / MB`.
    #[must_use]
    pub fn moore_fraction(&self) -> f64 {
        self.router_count() as f64 / self.moore_bound() as f64
    }
}

/// The MMS generator sets `X` and `X'` over a field.
///
/// See the module docs for the correctness conditions these sets satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorSets {
    x: Vec<Elem>,
    x_prime: Vec<Elem>,
}

impl GeneratorSets {
    /// Derives verified generator sets for the given field.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NotMmsCompatible`] if `q` does not fit the
    /// `4w + u` pattern, or [`FieldError::NoGeneratorSets`] if no valid
    /// sets exist (does not occur for any order used in the paper).
    pub fn generate(field: &Gf) -> Result<Self, FieldError> {
        let q = field.order();
        let params = SlimFlyParams::new(q)?;
        let u = params.u();

        // Closed forms first.
        let closed = match u {
            1 => Some(Self::even_odd_powers(field)),
            0 => Some(Self::even_powers_and_shift(field)),
            _ => None,
        };
        if let Some(sets) = closed {
            if sets.is_valid(field) {
                return Ok(sets);
            }
        }
        // Verified search (needed for u = −1; fallback otherwise).
        Self::search(field, params).ok_or(FieldError::NoGeneratorSets { q })
    }

    /// `X` — intra-subgroup generator set for type-0 subgroups.
    #[must_use]
    pub fn x(&self) -> &[Elem] {
        &self.x
    }

    /// `X'` — intra-subgroup generator set for type-1 subgroups.
    #[must_use]
    pub fn x_prime(&self) -> &[Elem] {
        &self.x_prime
    }

    /// u = 1 closed form: `X` = even powers of ξ, `X'` = odd powers.
    fn even_odd_powers(field: &Gf) -> Self {
        let q = field.order();
        let xi = field.generator();
        let mut x = Vec::new();
        let mut x_prime = Vec::new();
        for e in 0..q - 1 {
            let v = field.pow(xi, e);
            if e % 2 == 0 {
                x.push(v);
            } else {
                x_prime.push(v);
            }
        }
        x.sort_unstable();
        x_prime.sort_unstable();
        GeneratorSets { x, x_prime }
    }

    /// u = 0 closed form (q a power of two): `X` = even-exponent powers of
    /// ξ, `X' = ξ·X`. Since `q − 1` is odd, `X ∪ ξX` covers all of `GF(q)*`
    /// with exactly one overlap.
    fn even_powers_and_shift(field: &Gf) -> Self {
        let q = field.order();
        let xi = field.generator();
        let mut x = Vec::new();
        let mut e = 0;
        while e <= q.saturating_sub(2) {
            x.push(field.pow(xi, e));
            e += 2;
        }
        let mut x_prime: Vec<Elem> = x.iter().map(|&v| field.mul(xi, v)).collect();
        x.sort_unstable();
        x_prime.sort_unstable();
        GeneratorSets { x, x_prime }
    }

    /// Exhaustive search over symmetric candidate sets (u = −1 case).
    ///
    /// `X` is chosen as `(q+1)/4` symmetric pairs `{v, −v}`; `X'` must
    /// contain the complement of `X` in `GF(q)*` plus one extra pair from
    /// `X`. All candidates are validated against the full condition set.
    fn search(field: &Gf, params: SlimFlyParams) -> Option<Self> {
        let q = field.order();
        let set_size = params.generator_set_size();

        // Collect symmetric pairs {v, -v}; in characteristic 2 every
        // element is its own negation, so "pairs" are singletons.
        let mut pairs: Vec<Vec<Elem>> = Vec::new();
        let mut seen = vec![false; q];
        for v in field.nonzero_elements() {
            if seen[v.index()] {
                continue;
            }
            let nv = field.neg(v);
            seen[v.index()] = true;
            seen[nv.index()] = true;
            if nv == v {
                pairs.push(vec![v]);
            } else {
                pairs.push(vec![v, nv]);
            }
        }

        // Enumerate subsets of pairs whose total size is `set_size`.
        let n = pairs.len();
        for mask in 0u64..(1u64 << n) {
            let x: Vec<Elem> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .flat_map(|i| pairs[i].iter().copied())
                .collect();
            if x.len() != set_size {
                continue;
            }
            // X' must cover the complement; fill the remainder with pairs
            // drawn from X (or from anywhere, for full generality).
            let complement: Vec<Elem> = field
                .nonzero_elements()
                .filter(|v| !x.contains(v))
                .collect();
            if complement.len() > set_size {
                continue;
            }
            let deficit = set_size - complement.len();
            // Choose extra pairs out of the pair list to top up X'.
            for extra_mask in 0u64..(1u64 << n) {
                let extra: Vec<Elem> = (0..n)
                    .filter(|&i| extra_mask >> i & 1 == 1)
                    .flat_map(|i| pairs[i].iter().copied())
                    .filter(|v| !complement.contains(v))
                    .collect();
                if extra.len() != deficit
                    || (0..n).any(|i| {
                        extra_mask >> i & 1 == 1 && pairs[i].iter().all(|v| complement.contains(v))
                    })
                {
                    continue;
                }
                let mut x_prime = complement.clone();
                x_prime.extend(extra.iter().copied());
                let mut x_sorted = x.clone();
                x_sorted.sort_unstable();
                x_prime.sort_unstable();
                let cand = GeneratorSets {
                    x: x_sorted,
                    x_prime,
                };
                if cand.is_valid(field) {
                    return Some(cand);
                }
            }
        }
        None
    }

    /// Validates the diameter-2 sufficient conditions (see module docs).
    #[must_use]
    pub fn is_valid(&self, field: &Gf) -> bool {
        let q = field.order();
        let in_x = Self::membership(q, &self.x);
        let in_xp = Self::membership(q, &self.x_prime);

        // Condition 1: symmetry, no zero.
        if in_x[0] || in_xp[0] {
            return false;
        }
        for v in field.nonzero_elements() {
            let nv = field.neg(v).index();
            if in_x[v.index()] != in_x[nv] || in_xp[v.index()] != in_xp[nv] {
                return false;
            }
        }
        // Condition 2: X ∪ X' = GF(q)*.
        for v in field.nonzero_elements() {
            if !in_x[v.index()] && !in_xp[v.index()] {
                return false;
            }
        }
        // Condition 3: non-members are sums of two members.
        Self::sums_cover(field, &self.x, &in_x) && Self::sums_cover(field, &self.x_prime, &in_xp)
    }

    fn membership(q: usize, set: &[Elem]) -> Vec<bool> {
        let mut m = vec![false; q];
        for &v in set {
            m[v.index()] = true;
        }
        m
    }

    fn sums_cover(field: &Gf, set: &[Elem], members: &[bool]) -> bool {
        let q = field.order();
        let mut reachable = vec![false; q];
        for &a in set {
            for &b in set {
                reachable[field.add(a, b).index()] = true;
            }
        }
        (1..q).all(|d| members[d] || reachable[d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_paper_table2() {
        // (q, k', N_r) rows of Table 2.
        let rows = [
            (2, 3, 8),
            (3, 5, 18),
            (4, 6, 32),
            (5, 7, 50),
            (7, 11, 98),
            (8, 12, 128),
            (9, 13, 162),
        ];
        for (q, k, nr) in rows {
            let p = SlimFlyParams::new(q).unwrap();
            assert_eq!(p.network_radix(), k, "q = {q}");
            assert_eq!(p.router_count(), nr, "q = {q}");
        }
    }

    #[test]
    fn ideal_concentration_matches_table2() {
        // Table 2's "ideal concentration" column p = ⌈k'/2⌉.
        let rows = [(2, 2), (3, 3), (4, 3), (5, 4), (7, 6), (8, 6), (9, 7)];
        for (q, p_ideal) in rows {
            let p = SlimFlyParams::new(q).unwrap();
            assert_eq!(p.ideal_concentration(), p_ideal, "q = {q}");
        }
    }

    #[test]
    fn paper_design_points() {
        // SN-S: q = 5, p = 4 -> 200 nodes, 50 routers, k' = 7.
        let sn_s = SlimFlyParams::new(5).unwrap();
        assert_eq!(sn_s.nodes_with(4), 200);
        assert_eq!(sn_s.network_radix(), 7);
        // SN-L: q = 9, p = 8 -> 1296 nodes, 162 routers, k' = 13.
        let sn_l = SlimFlyParams::new(9).unwrap();
        assert_eq!(sn_l.nodes_with(8), 1296);
        assert_eq!(sn_l.network_radix(), 13);
        // Power-of-two design: q = 8, p = 8 -> 1024 nodes, radix 12.
        let sn_p2 = SlimFlyParams::new(8).unwrap();
        assert_eq!(sn_p2.nodes_with(8), 1024);
        assert_eq!(sn_p2.network_radix(), 12);
    }

    #[test]
    fn u_values() {
        assert_eq!(SlimFlyParams::new(5).unwrap().u(), 1);
        assert_eq!(SlimFlyParams::new(9).unwrap().u(), 1);
        assert_eq!(SlimFlyParams::new(13).unwrap().u(), 1);
        assert_eq!(SlimFlyParams::new(4).unwrap().u(), 0);
        assert_eq!(SlimFlyParams::new(8).unwrap().u(), 0);
        assert_eq!(SlimFlyParams::new(16).unwrap().u(), 0);
        assert_eq!(SlimFlyParams::new(3).unwrap().u(), -1);
        assert_eq!(SlimFlyParams::new(7).unwrap().u(), -1);
        assert_eq!(SlimFlyParams::new(11).unwrap().u(), -1);
        assert_eq!(SlimFlyParams::new(2).unwrap().u(), 0);
    }

    #[test]
    fn rejects_non_prime_power_q() {
        assert!(SlimFlyParams::new(6).is_err());
        assert!(SlimFlyParams::new(12).is_err());
    }

    #[test]
    fn moore_fraction_is_high() {
        // MMS graphs reach ≈ 8/9 of the Moore bound asymptotically.
        for q in [5, 7, 8, 9, 11, 13] {
            let p = SlimFlyParams::new(q).unwrap();
            let f = p.moore_fraction();
            assert!(f > 0.7 && f <= 1.0, "q = {q}: fraction {f}");
        }
    }

    #[test]
    fn generator_sets_valid_for_all_paper_orders() {
        for q in [2, 3, 4, 5, 7, 8, 9] {
            let field = Gf::new(q).unwrap();
            let sets = GeneratorSets::generate(&field).unwrap();
            assert!(sets.is_valid(&field), "q = {q}");
            let expected = SlimFlyParams::new(q).unwrap().generator_set_size();
            assert_eq!(sets.x().len(), expected, "q = {q}");
            assert_eq!(sets.x_prime().len(), expected, "q = {q}");
        }
    }

    #[test]
    fn generator_sets_valid_for_larger_orders() {
        for q in [11, 13, 16, 17, 19, 25] {
            let field = Gf::new(q).unwrap();
            let sets = GeneratorSets::generate(&field).unwrap();
            assert!(sets.is_valid(&field), "q = {q}");
        }
    }

    #[test]
    fn gf9_x_set_matches_paper() {
        // Paper §3.5.2: X = {1, x, 2, u}, X' = {v, y, z, w} in its naming,
        // i.e. indices {1, 6, 2, 3} and {4, 7, 8, 5}.
        let field = Gf::new(9).unwrap();
        let sets = GeneratorSets::generate(&field).unwrap();
        let x: Vec<usize> = sets.x().iter().map(|e| e.index()).collect();
        let xp: Vec<usize> = sets.x_prime().iter().map(|e| e.index()).collect();
        assert_eq!(x, vec![1, 2, 3, 6]);
        assert_eq!(xp, vec![4, 5, 7, 8]);
    }

    #[test]
    fn sets_are_disjoint_when_u_is_one() {
        // For u = 1 the even/odd powers partition GF(q)*.
        for q in [5, 9, 13] {
            let field = Gf::new(q).unwrap();
            let sets = GeneratorSets::generate(&field).unwrap();
            for v in sets.x() {
                assert!(!sets.x_prime().contains(v), "q = {q}");
            }
        }
    }
}
