//! Error type for finite-field construction.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing finite fields or Slim Fly parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FieldError {
    /// The requested order is not a prime power (finite fields only exist
    /// for prime-power orders).
    NotPrimePower {
        /// The requested field order.
        q: usize,
    },
    /// The requested order is too small to be a field (needs `q >= 2`).
    OrderTooSmall {
        /// The requested field order.
        q: usize,
    },
    /// The supplied modulus polynomial is not irreducible over GF(p), so it
    /// does not define a field.
    ReducibleModulus {
        /// The characteristic.
        p: usize,
        /// The encoded polynomial that failed the irreducibility test.
        poly: Vec<usize>,
    },
    /// The supplied modulus polynomial has the wrong degree for the
    /// requested extension.
    WrongModulusDegree {
        /// Expected degree (the extension degree `n` where `q = p^n`).
        expected: usize,
        /// Actual degree of the supplied polynomial.
        actual: usize,
    },
    /// `q` does not satisfy the MMS constraint `q = 4w + u` with
    /// `u ∈ {−1, 0, 1}` (the only exception the paper admits is `q = 2`).
    NotMmsCompatible {
        /// The requested parameter.
        q: usize,
    },
    /// An element index was out of range for the field order.
    NoSuchElement {
        /// The requested element index.
        index: usize,
        /// The field order.
        q: usize,
    },
    /// No valid generator sets `X`, `X'` could be found for this field.
    ///
    /// This indicates either an unsupported order or an internal search
    /// failure; all orders used in the paper are supported.
    NoGeneratorSets {
        /// The field order for which the search failed.
        q: usize,
    },
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::NotPrimePower { q } => {
                write!(f, "{q} is not a prime power, so GF({q}) does not exist")
            }
            FieldError::OrderTooSmall { q } => {
                write!(f, "field order must be at least 2, got {q}")
            }
            FieldError::ReducibleModulus { p, poly } => {
                write!(f, "polynomial {poly:?} is reducible over GF({p})")
            }
            FieldError::WrongModulusDegree { expected, actual } => {
                write!(f, "modulus has degree {actual}, expected {expected}")
            }
            FieldError::NotMmsCompatible { q } => {
                write!(
                    f,
                    "q = {q} is not of the form 4w + u with u in {{-1, 0, 1}}"
                )
            }
            FieldError::NoSuchElement { index, q } => {
                write!(f, "index {index} is out of range for GF({q})")
            }
            FieldError::NoGeneratorSets { q } => {
                write!(f, "no valid MMS generator sets found for GF({q})")
            }
        }
    }
}

impl Error for FieldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            FieldError::NotPrimePower { q: 6 },
            FieldError::OrderTooSmall { q: 1 },
            FieldError::ReducibleModulus {
                p: 2,
                poly: vec![1, 0, 1],
            },
            FieldError::WrongModulusDegree {
                expected: 2,
                actual: 3,
            },
            FieldError::NotMmsCompatible { q: 6 },
            FieldError::NoGeneratorSets { q: 6 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FieldError>();
    }
}
