//! Polynomials over GF(p) — the machinery behind non-prime fields.
//!
//! The paper (§3.5.2) builds `GF(9)` and `GF(8)` "by hand" via addition and
//! multiplication tables. Those tables are exactly polynomial arithmetic
//! modulo an irreducible polynomial; this module implements it so any
//! prime-power field can be generated, not just the two in the paper.
//!
//! Elements of `GF(p^n)` are polynomials of degree `< n` with coefficients
//! in `GF(p)`. A polynomial `c_0 + c_1 x + … + c_{n-1} x^{n-1}` is encoded
//! as the integer `c_0 + c_1 p + … + c_{n-1} p^{n-1}`, which gives every
//! element a canonical index in `0..p^n` — the same indexing the paper uses
//! when it names `GF(9)` elements `{0, 1, 2, u, v, w, x, y, z}`.

use std::fmt;

/// A polynomial over GF(p), stored as coefficients in increasing degree
/// order with no trailing zeros (the zero polynomial has no coefficients).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Poly {
    p: usize,
    coeffs: Vec<usize>,
}

impl Poly {
    /// Creates a polynomial over GF(p) from coefficients in increasing
    /// degree order. Coefficients are reduced modulo `p` and trailing zeros
    /// are trimmed.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`.
    #[must_use]
    pub fn new(p: usize, coeffs: &[usize]) -> Self {
        assert!(p >= 2, "characteristic must be at least 2");
        let mut c: Vec<usize> = coeffs.iter().map(|&x| x % p).collect();
        while c.last() == Some(&0) {
            c.pop();
        }
        Poly { p, coeffs: c }
    }

    /// The zero polynomial over GF(p).
    #[must_use]
    pub fn zero(p: usize) -> Self {
        Poly::new(p, &[])
    }

    /// Decodes an integer `code = c_0 + c_1 p + …` into a polynomial.
    #[must_use]
    pub fn from_code(p: usize, mut code: usize) -> Self {
        let mut coeffs = Vec::new();
        while code > 0 {
            coeffs.push(code % p);
            code /= p;
        }
        Poly::new(p, &coeffs)
    }

    /// Encodes this polynomial back into its canonical integer code.
    #[must_use]
    pub fn code(&self) -> usize {
        let mut code = 0;
        for &c in self.coeffs.iter().rev() {
            code = code * self.p + c;
        }
        code
    }

    /// The characteristic `p` of the coefficient field.
    #[must_use]
    pub fn characteristic(&self) -> usize {
        self.p
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns `true` if this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    #[must_use]
    pub fn coeff(&self, i: usize) -> usize {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// Polynomial addition in `GF(p)[x]`.
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        assert_eq!(self.p, other.p, "mismatched characteristics");
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs: Vec<usize> = (0..n)
            .map(|i| (self.coeff(i) + other.coeff(i)) % self.p)
            .collect();
        Poly::new(self.p, &coeffs)
    }

    /// Polynomial negation in `GF(p)[x]`.
    #[must_use]
    pub fn neg(&self) -> Poly {
        let coeffs: Vec<usize> = self.coeffs.iter().map(|&c| (self.p - c) % self.p).collect();
        Poly::new(self.p, &coeffs)
    }

    /// Polynomial multiplication in `GF(p)[x]`.
    #[must_use]
    pub fn mul(&self, other: &Poly) -> Poly {
        assert_eq!(self.p, other.p, "mismatched characteristics");
        if self.is_zero() || other.is_zero() {
            return Poly::zero(self.p);
        }
        let mut coeffs = vec![0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] = (coeffs[i + j] + a * b) % self.p;
            }
        }
        Poly::new(self.p, &coeffs)
    }

    /// Remainder of `self` divided by `modulus` in `GF(p)[x]`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or the characteristics differ.
    #[must_use]
    pub fn rem(&self, modulus: &Poly) -> Poly {
        assert_eq!(self.p, modulus.p, "mismatched characteristics");
        assert!(!modulus.is_zero(), "division by zero polynomial");
        let mdeg = modulus.degree().expect("nonzero");
        let lead = modulus.coeffs[mdeg];
        let lead_inv = mod_inverse(lead, self.p);
        let mut rem = self.coeffs.clone();
        while rem.len() > mdeg {
            let shift = rem.len() - 1 - mdeg;
            let factor = (rem[rem.len() - 1] * lead_inv) % self.p;
            if factor != 0 {
                for (i, &mc) in modulus.coeffs.iter().enumerate() {
                    let idx = i + shift;
                    let sub = (factor * mc) % self.p;
                    rem[idx] = (rem[idx] + self.p - sub) % self.p;
                }
            }
            // The leading coefficient is now zero by construction.
            rem.pop();
            while rem.last() == Some(&0) {
                rem.pop();
            }
            if rem.len() <= mdeg {
                break;
            }
        }
        Poly::new(self.p, &rem)
    }

    /// Evaluates the polynomial at a point of GF(p).
    #[must_use]
    pub fn eval(&self, x: usize) -> usize {
        let x = x % self.p;
        let mut acc = 0;
        for &c in self.coeffs.iter().rev() {
            acc = (acc * x + c) % self.p;
        }
        acc
    }

    /// Returns `true` if the polynomial is irreducible over GF(p).
    ///
    /// Uses trial division by all monic polynomials of degree up to
    /// `deg/2` — entirely adequate for the small degrees used here.
    #[must_use]
    pub fn is_irreducible(&self) -> bool {
        let Some(deg) = self.degree() else {
            return false; // zero polynomial
        };
        if deg == 0 {
            return false; // units are not irreducible
        }
        if deg == 1 {
            return true;
        }
        // Degree 2 and 3 are irreducible iff they have no roots.
        if deg <= 3 {
            return (0..self.p).all(|x| self.eval(x) != 0);
        }
        // General trial division by monic polynomials of degree 1..=deg/2.
        for d in 1..=deg / 2 {
            let count = pow_usize(self.p, d);
            for code in 0..count {
                // Monic polynomial of degree d: lower coefficients from the
                // code, leading coefficient 1.
                let mut coeffs = Poly::from_code(self.p, code).coeffs;
                coeffs.resize(d, 0);
                coeffs.push(1);
                let divisor = Poly::new(self.p, &coeffs);
                if self.rem(&divisor).is_zero() {
                    return false;
                }
            }
        }
        true
    }

    /// Finds the first irreducible monic polynomial of degree `n` over
    /// GF(p), scanning lower-coefficient codes in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p < 2`. An irreducible polynomial of every
    /// positive degree exists over every prime field, so this always
    /// returns for valid inputs.
    #[must_use]
    pub fn first_irreducible(p: usize, n: usize) -> Poly {
        assert!(n >= 1, "degree must be positive");
        assert!(p >= 2, "characteristic must be at least 2");
        let count = pow_usize(p, n);
        for code in 0..count {
            let mut coeffs = Poly::from_code(p, code).coeffs;
            coeffs.resize(n, 0);
            coeffs.push(1);
            let cand = Poly::new(p, &coeffs);
            if cand.is_irreducible() {
                return cand;
            }
        }
        unreachable!("an irreducible polynomial of degree {n} exists over GF({p})")
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match (i, c) {
                (0, c) => write!(f, "{c}")?,
                (1, 1) => write!(f, "x")?,
                (1, c) => write!(f, "{c}x")?,
                (i, 1) => write!(f, "x^{i}")?,
                (i, c) => write!(f, "{c}x^{i}")?,
            }
        }
        Ok(())
    }
}

/// Modular inverse of `a` modulo prime `p` via Fermat's little theorem.
fn mod_inverse(a: usize, p: usize) -> usize {
    mod_pow(a, p - 2, p)
}

fn mod_pow(mut base: usize, mut exp: usize, modulus: usize) -> usize {
    let mut acc = 1;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

fn pow_usize(base: usize, exp: usize) -> usize {
    let mut acc = 1usize;
    for _ in 0..exp {
        acc = acc.checked_mul(base).expect("prime power overflow");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for p in [2, 3, 5, 7] {
            for code in 0..p * p * p {
                let poly = Poly::from_code(p, code);
                assert_eq!(poly.code(), code, "p = {p}, code = {code}");
            }
        }
    }

    #[test]
    fn add_neg_cancels() {
        for code in 0..27 {
            let poly = Poly::from_code(3, code);
            assert!(poly.add(&poly.neg()).is_zero());
        }
    }

    #[test]
    fn mul_by_zero_and_one() {
        let zero = Poly::zero(5);
        let one = Poly::new(5, &[1]);
        let poly = Poly::new(5, &[2, 3, 4]);
        assert!(poly.mul(&zero).is_zero());
        assert_eq!(poly.mul(&one), poly);
    }

    #[test]
    fn rem_small_cases() {
        // (x^2 + 1) mod (x + 1) over GF(3): substitute x = -1 = 2 -> 4 + 1 = 5 = 2.
        let f = Poly::new(3, &[1, 0, 1]);
        let m = Poly::new(3, &[1, 1]);
        assert_eq!(f.rem(&m), Poly::new(3, &[2]));
    }

    #[test]
    fn rem_degree_is_below_modulus() {
        for code in 0..81 {
            let f = Poly::from_code(3, code);
            let m = Poly::new(3, &[1, 0, 1]); // x^2 + 1
            let r = f.rem(&m);
            assert!(r.degree().is_none_or(|d| d < 2));
        }
    }

    #[test]
    fn x2_plus_1_irreducible_over_gf3_not_gf5() {
        // Over GF(3): no roots -> irreducible. Over GF(5): 2^2 + 1 = 0.
        assert!(Poly::new(3, &[1, 0, 1]).is_irreducible());
        assert!(!Poly::new(5, &[1, 0, 1]).is_irreducible());
    }

    #[test]
    fn known_irreducibles_gf2() {
        assert!(Poly::new(2, &[1, 1, 0, 1]).is_irreducible()); // x^3 + x + 1
        assert!(Poly::new(2, &[1, 0, 1, 1]).is_irreducible()); // x^3 + x^2 + 1
        assert!(!Poly::new(2, &[1, 0, 0, 1]).is_irreducible()); // x^3 + 1
        assert!(Poly::new(2, &[1, 1, 0, 0, 1]).is_irreducible()); // x^4 + x + 1
    }

    #[test]
    fn first_irreducible_has_right_degree() {
        for (p, n) in [
            (2, 2),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 2),
            (3, 3),
            (5, 2),
            (7, 2),
        ] {
            let f = Poly::first_irreducible(p, n);
            assert_eq!(f.degree(), Some(n));
            assert!(f.is_irreducible());
        }
    }

    #[test]
    fn first_irreducible_gf9_is_x2_plus_1() {
        // The paper's GF(9) table corresponds to x^2 + 1; our search order
        // finds the same polynomial first.
        assert_eq!(Poly::first_irreducible(3, 2), Poly::new(3, &[1, 0, 1]));
    }

    #[test]
    fn eval_horner() {
        let f = Poly::new(7, &[1, 2, 3]); // 3x^2 + 2x + 1
        assert_eq!(f.eval(0), 1);
        assert_eq!(f.eval(1), 6);
        assert_eq!(f.eval(2), (3 * 4 + 2 * 2 + 1) % 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Poly::zero(3).to_string(), "0");
        assert_eq!(Poly::new(3, &[1, 0, 1]).to_string(), "x^2 + 1");
        assert_eq!(Poly::new(3, &[0, 2]).to_string(), "2x");
        assert_eq!(Poly::new(2, &[1, 1, 0, 1]).to_string(), "x^3 + x + 1");
    }
}
