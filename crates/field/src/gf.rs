//! Concrete finite fields with precomputed operation tables.

use crate::error::FieldError;
use crate::poly::Poly;
use crate::prime::factor_prime_power;
use std::fmt;

/// An element of a finite field, identified by its canonical index in
/// `0..q`.
///
/// For prime fields the index is the residue itself; for extension fields
/// it is the base-`p` encoding of the polynomial coefficients (the same
/// canonical ordering the paper uses to name `GF(9)` elements
/// `{0, 1, 2, u, v, w, x, y, z}`).
///
/// `Elem` is deliberately a plain index wrapper: it carries no reference to
/// its field, so operations go through [`Gf`] methods. Mixing elements of
/// different fields is a logic error that [`Gf`] guards with debug
/// assertions on the index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Elem(pub usize);

impl Elem {
    /// The canonical index of this element in `0..q`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A finite field `GF(q)` with full operation tables.
///
/// Supports any prime-power order. Prime fields are residue arithmetic;
/// extension fields use polynomial arithmetic modulo an irreducible
/// polynomial, matching the "build the tables by hand" procedure of the
/// paper's §3.5.2 and Table 3.
///
/// # Examples
///
/// ```
/// use snoc_field::Gf;
///
/// let f8 = Gf::new(8)?;
/// let a = f8.element(3)?;
/// // Characteristic 2: every element is its own negation.
/// assert_eq!(f8.add(a, a), f8.zero());
/// # Ok::<(), snoc_field::FieldError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf {
    q: usize,
    p: usize,
    n: usize,
    modulus: Option<Poly>,
    add: Vec<usize>,
    mul: Vec<usize>,
    neg: Vec<usize>,
    inv: Vec<usize>, // inv[0] unused (stored as 0)
    generator: usize,
}

impl Gf {
    /// Constructs `GF(q)` for a prime-power `q`, choosing the first
    /// irreducible modulus in canonical order for extension fields.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NotPrimePower`] if `q` is not a prime power,
    /// or [`FieldError::OrderTooSmall`] if `q < 2`.
    pub fn new(q: usize) -> Result<Self, FieldError> {
        if q < 2 {
            return Err(FieldError::OrderTooSmall { q });
        }
        let (p, n) = factor_prime_power(q).ok_or(FieldError::NotPrimePower { q })?;
        if n == 1 {
            Ok(Self::build_prime(p))
        } else {
            let modulus = Poly::first_irreducible(p, n);
            Ok(Self::build_extension(p, n, modulus))
        }
    }

    /// Constructs an extension field `GF(p^n)` with an explicit modulus
    /// polynomial (coefficients in increasing degree order, including the
    /// leading coefficient).
    ///
    /// This exists so the exact tables of the paper's Table 3 can be
    /// reproduced: the paper's `GF(8)` corresponds to `x³ + x² + 1` rather
    /// than the canonical-first `x³ + x + 1`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is not a prime power, the modulus has the
    /// wrong degree, or the modulus is reducible.
    pub fn with_modulus(q: usize, modulus_coeffs: &[usize]) -> Result<Self, FieldError> {
        if q < 2 {
            return Err(FieldError::OrderTooSmall { q });
        }
        let (p, n) = factor_prime_power(q).ok_or(FieldError::NotPrimePower { q })?;
        let modulus = Poly::new(p, modulus_coeffs);
        match modulus.degree() {
            Some(d) if d == n => {}
            d => {
                return Err(FieldError::WrongModulusDegree {
                    expected: n,
                    actual: d.unwrap_or(0),
                })
            }
        }
        if !modulus.is_irreducible() {
            return Err(FieldError::ReducibleModulus {
                p,
                poly: modulus_coeffs.to_vec(),
            });
        }
        if n == 1 {
            Ok(Self::build_prime(p))
        } else {
            Ok(Self::build_extension(p, n, modulus))
        }
    }

    fn build_prime(p: usize) -> Self {
        let q = p;
        let mut add = vec![0; q * q];
        let mut mul = vec![0; q * q];
        for a in 0..q {
            for b in 0..q {
                add[a * q + b] = (a + b) % q;
                mul[a * q + b] = (a * b) % q;
            }
        }
        Self::finish(q, p, 1, None, add, mul)
    }

    fn build_extension(p: usize, n: usize, modulus: Poly) -> Self {
        let q = (0..n).fold(1usize, |acc, _| acc * p);
        let polys: Vec<Poly> = (0..q).map(|c| Poly::from_code(p, c)).collect();
        let mut add = vec![0; q * q];
        let mut mul = vec![0; q * q];
        for a in 0..q {
            for b in 0..q {
                add[a * q + b] = polys[a].add(&polys[b]).code();
                mul[a * q + b] = polys[a].mul(&polys[b]).rem(&modulus).code();
            }
        }
        Self::finish(q, p, n, Some(modulus), add, mul)
    }

    fn finish(
        q: usize,
        p: usize,
        n: usize,
        modulus: Option<Poly>,
        add: Vec<usize>,
        mul: Vec<usize>,
    ) -> Self {
        // Negation table: -a is the unique b with a + b = 0.
        let mut neg = vec![0; q];
        for a in 0..q {
            neg[a] = (0..q).find(|&b| add[a * q + b] == 0).expect("group");
        }
        // Inverse table: a^{-1} is the unique b with a * b = 1.
        let mut inv = vec![0; q];
        for a in 1..q {
            inv[a] = (1..q).find(|&b| mul[a * q + b] == 1).expect("field");
        }
        // Generator: smallest-index element of multiplicative order q - 1.
        // The paper finds ξ "by exhaustive search" (§3.5.1); so do we.
        let mut generator = 0;
        'outer: for g in 1..q {
            let mut acc = g;
            for ord in 1..q {
                if acc == 1 {
                    if ord == q - 1 {
                        generator = g;
                        break 'outer;
                    }
                    continue 'outer;
                }
                acc = mul[acc * q + g];
            }
        }
        assert!(
            generator != 0 || q == 2,
            "every finite field has a generator"
        );
        if q == 2 {
            generator = 1;
        }
        Gf {
            q,
            p,
            n,
            modulus,
            add,
            mul,
            neg,
            inv,
            generator,
        }
    }

    /// The order `q` of the field.
    #[must_use]
    pub fn order(&self) -> usize {
        self.q
    }

    /// The characteristic `p` (the prime with `q = p^n`).
    #[must_use]
    pub fn characteristic(&self) -> usize {
        self.p
    }

    /// The extension degree `n` (1 for prime fields).
    #[must_use]
    pub fn extension_degree(&self) -> usize {
        self.n
    }

    /// The modulus polynomial, or `None` for prime fields.
    #[must_use]
    pub fn modulus(&self) -> Option<&Poly> {
        self.modulus.as_ref()
    }

    /// The additive identity.
    #[must_use]
    pub fn zero(&self) -> Elem {
        Elem(0)
    }

    /// The multiplicative identity.
    #[must_use]
    pub fn one(&self) -> Elem {
        Elem(1)
    }

    /// The chosen primitive element ξ (smallest-index generator of the
    /// multiplicative group).
    #[must_use]
    pub fn generator(&self) -> Elem {
        Elem(self.generator)
    }

    /// All generators of the multiplicative group, in index order.
    ///
    /// For the paper's `GF(9)` these are the four elements it lists as
    /// `{v, w, y, z}`.
    #[must_use]
    pub fn all_generators(&self) -> Vec<Elem> {
        (1..self.q)
            .map(Elem)
            .filter(|&g| self.multiplicative_order(g) == self.q - 1)
            .collect()
    }

    /// Multiplicative order of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero.
    #[must_use]
    pub fn multiplicative_order(&self, a: Elem) -> usize {
        assert!(a.0 != 0, "zero has no multiplicative order");
        let mut acc = a.0;
        let mut ord = 1;
        while acc != 1 {
            acc = self.mul[acc * self.q + a.0];
            ord += 1;
        }
        ord
    }

    /// Returns the element with the given canonical index.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NoSuchElement`] if `index >= q`.
    pub fn element(&self, index: usize) -> Result<Elem, FieldError> {
        if index < self.q {
            Ok(Elem(index))
        } else {
            Err(FieldError::NoSuchElement { index, q: self.q })
        }
    }

    /// Iterates over all field elements in index order.
    pub fn elements(&self) -> impl Iterator<Item = Elem> + '_ {
        (0..self.q).map(Elem)
    }

    /// Iterates over all nonzero elements in index order.
    pub fn nonzero_elements(&self) -> impl Iterator<Item = Elem> + '_ {
        (1..self.q).map(Elem)
    }

    #[inline]
    fn check(&self, a: Elem) -> usize {
        debug_assert!(
            a.0 < self.q,
            "element {} out of range for GF({})",
            a.0,
            self.q
        );
        a.0
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, a: Elem, b: Elem) -> Elem {
        Elem(self.add[self.check(a) * self.q + self.check(b)])
    }

    /// Field subtraction `a - b`.
    #[must_use]
    pub fn sub(&self, a: Elem, b: Elem) -> Elem {
        let nb = self.neg[self.check(b)];
        Elem(self.add[self.check(a) * self.q + nb])
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, a: Elem, b: Elem) -> Elem {
        Elem(self.mul[self.check(a) * self.q + self.check(b)])
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self, a: Elem) -> Elem {
        Elem(self.neg[self.check(a)])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero.
    #[must_use]
    pub fn inv(&self, a: Elem) -> Elem {
        let i = self.check(a);
        assert!(i != 0, "zero has no multiplicative inverse");
        Elem(self.inv[i])
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn div(&self, a: Elem, b: Elem) -> Elem {
        self.mul(a, self.inv(b))
    }

    /// Exponentiation `a^e` (with `a^0 = 1`, including for `a = 0`).
    #[must_use]
    pub fn pow(&self, a: Elem, e: usize) -> Elem {
        let mut acc = Elem(1);
        let mut base = a;
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Human-readable element names matching the paper's convention:
    /// indices below `p` print as digits, the rest as letters starting at
    /// `u` (then wrapping to `a, b, c, …` for very large fields).
    ///
    /// For `GF(9)` this yields exactly the paper's
    /// `{0, 1, 2, u, v, w, x, y, z}`; for `GF(8)`,
    /// `{0, 1, u, v, w, x, y, z}`.
    #[must_use]
    pub fn element_name(&self, a: Elem) -> String {
        let i = self.check(a);
        if i < self.p && self.n > 1 {
            return i.to_string();
        }
        if self.n == 1 {
            return i.to_string();
        }
        let letter_idx = i - self.p;
        let letters = "uvwxyz";
        if letter_idx < letters.len() {
            letters[letter_idx..=letter_idx].to_string()
        } else {
            format!("e{i}")
        }
    }

    /// Renders the full addition table as rows of element names — the
    /// format of the paper's Table 3.
    #[must_use]
    pub fn addition_table(&self) -> Vec<Vec<String>> {
        self.op_table(|a, b| self.add(a, b))
    }

    /// Renders the full multiplication table as rows of element names.
    #[must_use]
    pub fn multiplication_table(&self) -> Vec<Vec<String>> {
        self.op_table(|a, b| self.mul(a, b))
    }

    /// Renders the negation table (`e_l`, `-e_l`) as name pairs.
    #[must_use]
    pub fn negation_table(&self) -> Vec<(String, String)> {
        self.elements()
            .map(|a| (self.element_name(a), self.element_name(self.neg(a))))
            .collect()
    }

    fn op_table(&self, op: impl Fn(Elem, Elem) -> Elem) -> Vec<Vec<String>> {
        self.elements()
            .map(|a| {
                self.elements()
                    .map(|b| self.element_name(op(a, b)))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axioms(f: &Gf) {
        let q = f.order();
        // Commutativity and identities.
        for a in f.elements() {
            assert_eq!(f.add(a, f.zero()), a);
            assert_eq!(f.mul(a, f.one()), a);
            assert_eq!(f.mul(a, f.zero()), f.zero());
            for b in f.elements() {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
            }
        }
        // Associativity and distributivity (exhaustive for small q).
        if q <= 9 {
            for a in f.elements() {
                for b in f.elements() {
                    for c in f.elements() {
                        assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                        assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                        assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                    }
                }
            }
        }
        // Inverses.
        for a in f.elements() {
            assert_eq!(f.add(a, f.neg(a)), f.zero());
        }
        for a in f.nonzero_elements() {
            assert_eq!(f.mul(a, f.inv(a)), f.one());
            assert_eq!(f.div(a, a), f.one());
        }
        // Subtraction agrees with add/neg.
        for a in f.elements() {
            for b in f.elements() {
                assert_eq!(f.sub(a, b), f.add(a, f.neg(b)));
            }
        }
    }

    #[test]
    fn field_axioms_all_paper_orders() {
        for q in [2, 3, 4, 5, 7, 8, 9] {
            let f = Gf::new(q).unwrap();
            axioms(&f);
        }
    }

    #[test]
    fn field_axioms_larger_orders() {
        for q in [11, 13, 16, 25, 27] {
            let f = Gf::new(q).unwrap();
            // Light-weight subset of axioms for larger fields.
            for a in f.elements() {
                assert_eq!(f.add(a, f.neg(a)), f.zero());
            }
            for a in f.nonzero_elements() {
                assert_eq!(f.mul(a, f.inv(a)), f.one());
            }
        }
    }

    #[test]
    fn rejects_non_prime_powers() {
        for q in [0, 1, 6, 10, 12, 15] {
            assert!(Gf::new(q).is_err(), "q = {q}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        for q in [2, 3, 4, 5, 7, 8, 9, 11, 13, 16] {
            let f = Gf::new(q).unwrap();
            let g = f.generator();
            assert_eq!(f.multiplicative_order(g), q - 1, "q = {q}");
            // Powers of the generator enumerate all nonzero elements.
            let mut seen = vec![false; q];
            for e in 0..q - 1 {
                seen[f.pow(g, e).index()] = true;
            }
            assert!(seen[1..].iter().all(|&s| s), "q = {q}");
        }
    }

    #[test]
    fn gf9_generators_match_paper() {
        // Paper §3.5.2: GF(9) has 4 equivalent generators named v, w, y, z,
        // i.e. indices 4, 5, 7, 8 in the canonical encoding.
        let f9 = Gf::new(9).unwrap();
        let gens: Vec<usize> = f9.all_generators().iter().map(|g| g.index()).collect();
        assert_eq!(gens, vec![4, 5, 7, 8]);
        let names: Vec<String> = f9
            .all_generators()
            .iter()
            .map(|&g| f9.element_name(g))
            .collect();
        assert_eq!(names, vec!["v", "w", "y", "z"]);
    }

    #[test]
    fn gf9_element_names_match_paper() {
        let f9 = Gf::new(9).unwrap();
        let names: Vec<String> = f9.elements().map(|e| f9.element_name(e)).collect();
        assert_eq!(names, vec!["0", "1", "2", "u", "v", "w", "x", "y", "z"]);
    }

    #[test]
    fn gf8_element_names_match_paper() {
        let f8 = Gf::new(8).unwrap();
        let names: Vec<String> = f8.elements().map(|e| f8.element_name(e)).collect();
        assert_eq!(names, vec!["0", "1", "u", "v", "w", "x", "y", "z"]);
    }

    #[test]
    fn with_modulus_rejects_reducible() {
        // x^3 + 1 = (x + 1)(x^2 + x + 1) over GF(2).
        assert!(matches!(
            Gf::with_modulus(8, &[1, 0, 0, 1]),
            Err(FieldError::ReducibleModulus { .. })
        ));
    }

    #[test]
    fn with_modulus_rejects_wrong_degree() {
        assert!(matches!(
            Gf::with_modulus(8, &[1, 1, 1]),
            Err(FieldError::WrongModulusDegree {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn with_modulus_alternative_gf8_still_a_field() {
        // The paper's GF(8) uses x^3 + x^2 + 1.
        let f = Gf::with_modulus(8, &[1, 0, 1, 1]).unwrap();
        axioms(&f);
    }

    #[test]
    fn frobenius_is_additive_in_char_p() {
        // (a + b)^p = a^p + b^p — a strong structural sanity check.
        for q in [4, 8, 9, 16, 25] {
            let f = Gf::new(q).unwrap();
            let p = f.characteristic();
            for a in f.elements() {
                for b in f.elements() {
                    assert_eq!(
                        f.pow(f.add(a, b), p),
                        f.add(f.pow(a, p), f.pow(b, p)),
                        "q = {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn element_out_of_range() {
        let f = Gf::new(5).unwrap();
        assert!(f.element(4).is_ok());
        assert!(f.element(5).is_err());
    }
}
