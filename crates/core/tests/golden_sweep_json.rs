//! Golden-file test pinning the `slim_noc-sweep-v1` JSON schema.
//!
//! Downstream consumers (`bench_compare`, plotting scripts) index this
//! output by field name and rely on its ordering and units. The v2
//! power-aware schema is defined as a strict superset of v1, so this
//! test is the contract that v2 — or any later change — never breaks
//! v1 consumers: the serialization of a fixed result must match the
//! committed golden byte-for-byte, and the v2 form of the same result
//! must contain every v1 line as a prefix.

use snoc_core::{CampaignResult, PowerPoint, SweepPoint};
use snoc_power::TechNode;

/// A fully deterministic result (no simulation involved) covering the
/// serializer's edge cases: escaped quotes in names, a refined point,
/// a saturated point, and a non-finite float (serialized as null).
fn fixed_result() -> CampaignResult {
    CampaignResult {
        name: "golden \"v1\"".to_string(),
        setups: vec!["sn54".to_string(), "cm4".to_string()],
        patterns: vec!["RND".to_string()],
        warmup: 200,
        measure: 800,
        base_seed: 0xC0FFEE,
        tech: None,
        cache_hits: 0,
        cache_misses: 0,
        points: vec![
            SweepPoint {
                setup: "sn54".to_string(),
                pattern: "RND".to_string(),
                load: 0.02,
                seed: 1234567890123456789,
                latency: 17.25,
                p99_latency: 31,
                throughput: 0.019875,
                avg_hops: 1.625,
                acceptance: 1.0,
                delivered_packets: 420,
                dropped_packets: 0,
                saturated: false,
                drained: true,
                refined: false,
                power: None,
            },
            SweepPoint {
                setup: "cm4".to_string(),
                pattern: "RND".to_string(),
                load: 0.3,
                seed: 42,
                latency: f64::INFINITY,
                p99_latency: 4095,
                throughput: 0.066,
                avg_hops: 5.0,
                acceptance: 0.25,
                delivered_packets: 9000,
                dropped_packets: 0,
                saturated: true,
                drained: false,
                refined: true,
                power: None,
            },
        ],
    }
}

/// The same fixed result as a power-aware (v2) campaign: a tech node
/// plus power columns on every point. Values exercise scientific
/// notation and plain decimals.
fn fixed_result_v2() -> CampaignResult {
    let mut v2 = fixed_result();
    v2.tech = Some(TechNode::N45);
    for p in &mut v2.points {
        p.power = Some(PowerPoint {
            power_w: 8.461,
            static_w: 2.872,
            dynamic_w: 5.589,
            area_mm2: 97.25,
            throughput_per_watt: 2.306e9,
            energy_per_flit_j: 4.336e-10,
            edp_js: 1.044e-7,
        });
    }
    v2
}

#[test]
fn sweep_v1_json_matches_golden_file() {
    let golden = include_str!("golden/sweep_v1.json");
    let got = fixed_result().to_json();
    assert_eq!(
        got, golden,
        "slim_noc-sweep-v1 serialization changed; this schema is pinned \
         for downstream consumers — bump to a new schema version instead \
         of mutating v1"
    );
}

#[test]
fn v1_field_names_and_order_are_pinned() {
    let json = fixed_result().to_json();
    // Header fields, in order.
    let header_order = [
        "schema",
        "campaign",
        "setups",
        "patterns",
        "warmup",
        "measure",
        "base_seed",
        "points",
    ];
    let mut last = 0;
    for field in header_order {
        let idx = json
            .find(&format!("\"{field}\":"))
            .unwrap_or_else(|| panic!("missing header field {field}"));
        assert!(idx > last, "header field {field} out of order");
        last = idx;
    }
    // Per-point fields, in order, on every point line.
    let point_order = [
        "setup",
        "pattern",
        "load",
        "seed",
        "latency",
        "p99_latency",
        "throughput",
        "avg_hops",
        "acceptance",
        "delivered_packets",
        "saturated",
        "drained",
        "refined",
    ];
    for line in json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"setup\""))
    {
        let mut last = 0;
        for field in point_order {
            let idx = line
                .find(&format!("\"{field}\":"))
                .unwrap_or_else(|| panic!("missing point field {field} in {line}"));
            assert!(idx >= last, "point field {field} out of order in {line}");
            last = idx;
        }
    }
}

#[test]
fn dropped_packets_column_appears_only_on_degraded_points() {
    // Fault-free points keep the exact v1/v2 wire form (pinned by the
    // golden files above); degraded-mode points append the drop count
    // after `refined` and before any power columns.
    let mut result = fixed_result_v2();
    result.points[1].dropped_packets = 17;
    let json = result.to_json();
    let lines: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"setup\""))
        .collect();
    assert!(!lines[0].contains("dropped_packets"), "{}", lines[0]);
    let degraded = lines[1];
    let dropped = degraded.find("\"dropped_packets\": 17").expect(degraded);
    assert!(degraded.find("\"refined\":").unwrap() < dropped);
    assert!(dropped < degraded.find("\"power_w\":").unwrap());
}

#[test]
fn sweep_v2_json_matches_golden_file() {
    // v2 is pinned byte-for-byte just like v1: `bench_compare`, the CI
    // energy-figure artifact, and plotting scripts consume it. Bump to
    // v3 instead of mutating this schema. To record an intentional
    // schema bump, run with `UPDATE_GOLDEN=1` and commit the diff.
    let got = fixed_result_v2().to_json();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sweep_v2.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; record it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, golden,
        "slim_noc-sweep-v2 serialization changed; this schema is pinned \
         for downstream consumers — bump to a new schema version instead \
         of mutating v2 (or run with UPDATE_GOLDEN=1 for an intentional \
         bump and review the diff)"
    );
}

#[test]
fn v2_power_columns_and_order_are_pinned() {
    let json = fixed_result_v2().to_json();
    assert!(json.contains("\"schema\": \"slim_noc-sweep-v2\""));
    assert!(json.contains("\"tech\": \"45nm\""));
    // Power columns trail the v1 point fields, in this order, on every
    // point line.
    let power_order = [
        "refined", // last v1 field
        "power_w",
        "static_w",
        "dynamic_w",
        "area_mm2",
        "throughput_per_watt",
        "energy_per_flit_j",
        "edp_js",
    ];
    for line in json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"setup\""))
    {
        let mut last = 0;
        for field in power_order {
            let idx = line
                .find(&format!("\"{field}\":"))
                .unwrap_or_else(|| panic!("missing v2 point field {field} in {line}"));
            assert!(idx > last, "v2 point field {field} out of order in {line}");
            last = idx;
        }
    }
}

#[test]
fn v2_superset_preserves_every_v1_point_prefix() {
    // The same fixed result rendered as v2: every v1 point line must
    // survive verbatim as the prefix of its v2 line, so a v1 consumer
    // reading by field name sees identical values.
    let v1 = fixed_result();
    let v2 = fixed_result_v2();
    let v1_json = v1.to_json();
    let v2_json = v2.to_json();
    assert!(v2_json.contains("\"schema\": \"slim_noc-sweep-v2\""));
    let v1_points: Vec<&str> = v1_json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"setup\""))
        .map(|l| l.trim_end_matches(&[',', '}'][..]))
        .collect();
    let v2_points: Vec<&str> = v2_json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"setup\""))
        .collect();
    assert_eq!(v1_points.len(), v2_points.len());
    for (p1, p2) in v1_points.iter().zip(&v2_points) {
        assert!(
            p2.starts_with(p1),
            "v2 point must extend its v1 form\n v1: {p1}\n v2: {p2}"
        );
    }
}
