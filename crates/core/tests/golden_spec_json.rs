//! Golden-file test pinning the `slim_noc-spec-v1` campaign-spec
//! schema.
//!
//! The spec JSON is simultaneously the wire format of `snoc serve`,
//! the `--spec` CLI input of every repro binary, and the source of the
//! content-addressed cache keys — so its bytes are a contract twice
//! over: consumers parse it by field name, and any serialization drift
//! would silently re-key (and thus cold-start) every existing cache.
//! Pinned alongside the sweep-v1/v2 goldens with the same
//! `UPDATE_GOLDEN=1` re-record flow.

use snoc_core::{BufferPreset, CampaignSpec, SetupSpec};
use snoc_layout::SnLayout;
use snoc_power::TechNode;
use snoc_sim::RoutingKind;
use snoc_traffic::TrafficPattern;

/// A fully deterministic spec covering the format's edge cases: every
/// optional field populated, an escaped quote in the name, a layout
/// override, a CBR buffer with a size argument, and loads that need
/// shortest-round-trip float printing.
fn fixed_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("golden \"spec\"");
    spec.setups = vec![SetupSpec::new("sn54"), {
        let mut s = SetupSpec::new("sn_s");
        s.name = "sn_s+smart".to_string();
        s.sn_layout = Some(SnLayout::Random(7));
        s.smart = true;
        s.buffers = BufferPreset::Cbr(20);
        s.routing = RoutingKind::UgalG;
        s
    }];
    spec.patterns = vec![TrafficPattern::Random, TrafficPattern::Adversarial1];
    spec.loads = vec![0.008, 0.1, 1.0 / 3.0];
    spec.warmup = 300;
    spec.measure = 1_200;
    spec.base_seed = 0xC0FFEE;
    spec.refine_rounds = 2;
    spec.stop_at_saturation = false;
    spec.threads = 3;
    spec.power_tech = Some(TechNode::N22);
    spec.cache_dir = Some(".snoc-cache".to_string());
    spec
}

#[test]
fn spec_v1_json_matches_golden_file() {
    let got = fixed_spec().to_json();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/spec_v1.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; record it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, golden,
        "slim_noc-spec-v1 serialization changed; the spec schema is \
         pinned — it is the server wire format AND the cache-key \
         source, so drift silently invalidates every existing cache. \
         Bump to spec-v2 instead of mutating v1 (or run with \
         UPDATE_GOLDEN=1 for an intentional bump and review the diff)"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_spec() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/spec_v1.json");
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; record it with UPDATE_GOLDEN=1");
    let parsed = CampaignSpec::from_json(&golden).expect("golden spec parses");
    assert_eq!(
        parsed,
        fixed_spec(),
        "value round trip from the pinned bytes"
    );
    assert_eq!(parsed.to_json(), golden, "byte round trip");
}

#[test]
fn spec_field_names_and_order_are_pinned() {
    let json = fixed_spec().to_json();
    let header_order = [
        "schema",
        "name",
        "setups",
        "patterns",
        "loads",
        "warmup",
        "measure",
        "base_seed",
        "refine_rounds",
        "stop_at_saturation",
        "threads",
        "tech",
        "cache_dir",
    ];
    let mut last = 0;
    for field in header_order {
        let idx = json
            .find(&format!("\"{field}\":"))
            .unwrap_or_else(|| panic!("missing spec field {field}"));
        assert!(idx > last, "spec field {field} out of order");
        last = idx;
    }
    let setup_order = ["config", "name", "layout", "smart", "buffers", "routing"];
    let line = json
        .lines()
        .find(|l| l.contains("\"config\": \"sn_s\""))
        .expect("modified setup line");
    let mut last = 0;
    for field in setup_order {
        let idx = line
            .find(&format!("\"{field}\":"))
            .unwrap_or_else(|| panic!("missing setup field {field} in {line}"));
        assert!(idx > last, "setup field {field} out of order");
        last = idx;
    }
}
