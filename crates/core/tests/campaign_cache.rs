//! Cache-correctness contract of the content-addressed campaign cache.
//!
//! Cold run → widen the load grid → warm re-run, asserting:
//! (a) only the genuinely new points are simulated (hit/miss counters
//!     on [`CampaignResult`]);
//! (b) the merged warm result serializes **byte-identically** to a
//!     cold run of the widened spec — cached points reproduce exact
//!     f64 bits, and curve-level state (zero-load reference,
//!     saturation flags) is re-derived identically;
//! (c) an engine-version salt change makes every stored entry
//!     unreachable, forcing a full re-simulation.

use snoc_core::{Campaign, CampaignResult, FaultsSpec, PointCache, Setup, StormSpec};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("snoc_campaign_cache_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign(loads: &[f64]) -> Campaign {
    Campaign::new("cache-contract")
        .with_setups(vec![
            Setup::paper("sn54").expect("paper config"),
            Setup::paper("cm3").expect("paper config"),
        ])
        .with_patterns(vec![TrafficPattern::Random])
        .with_loads(loads.to_vec())
        .with_windows(150, 500)
}

const NARROW: [f64; 2] = [0.02, 0.05];
/// The widened grid inserts a point mid-grid and appends one, so the
/// warm run must interleave cached and fresh points within one curve.
const WIDE: [f64; 4] = [0.02, 0.035, 0.05, 0.08];

fn points_per_run(loads: &[f64]) -> u64 {
    // 2 setups × 1 pattern × |loads| (nothing saturates at these tiny
    // loads, so no curve stops early — asserted in the tests).
    2 * loads.len() as u64
}

#[test]
fn warm_rerun_simulates_nothing_and_matches_cold_bytes() {
    let dir = tmp("identical");
    let cold = campaign(&NARROW)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(cold.cache_hits, 0, "cold run: nothing to hit");
    assert_eq!(cold.cache_misses, points_per_run(&NARROW));
    assert_eq!(cold.points.len() as u64, points_per_run(&NARROW));

    // Same spec again, fresh cache handle from disk: zero simulations.
    let warm = campaign(&NARROW)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(
        warm.cache_misses, 0,
        "identical rerun must simulate nothing"
    );
    assert_eq!(warm.cache_hits, points_per_run(&NARROW));
    assert_eq!(warm.to_json(), cold.to_json(), "byte-identical replay");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn widened_sweep_simulates_only_the_new_points() {
    let dir = tmp("widen");
    let narrow = campaign(&NARROW)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(narrow.cache_misses, points_per_run(&NARROW));

    // Reference: a cold run of the widened grid, no cache anywhere.
    let cold_wide: CampaignResult = campaign(&WIDE).run();
    assert_eq!(cold_wide.cache_hits + cold_wide.cache_misses, 0, "uncached");
    assert!(
        cold_wide.points.iter().all(|p| !p.saturated),
        "precondition: no curve may stop early or the counter \
         arithmetic below is wrong"
    );

    // Warm run of the widened grid: old points replay, new points run.
    let warm_wide = campaign(&WIDE)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(warm_wide.cache_hits, points_per_run(&NARROW));
    assert_eq!(
        warm_wide.cache_misses,
        points_per_run(&WIDE) - points_per_run(&NARROW),
        "only the delta is simulated"
    );
    assert_eq!(
        warm_wide.to_json(),
        cold_wide.to_json(),
        "the merged cached+fresh result must be byte-identical to a \
         cold run of the widened spec"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_version_salt_invalidates_stale_entries() {
    let dir = tmp("salt");
    let first = campaign(&NARROW)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(first.cache_misses, points_per_run(&NARROW));

    // Same directory, different engine version: everything is stale.
    let stale = Arc::new(
        PointCache::open_with_version(&dir, "slim_noc-engine-v0-test").expect("open cache"),
    );
    assert_eq!(
        stale.len(),
        usize::try_from(points_per_run(&NARROW)).unwrap()
    );
    let rerun = campaign(&NARROW).with_cache(stale).run();
    assert_eq!(rerun.cache_hits, 0, "stale entries must never hit");
    assert_eq!(rerun.cache_misses, points_per_run(&NARROW));
    assert_eq!(rerun.to_json(), first.to_json(), "results still agree");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_campaigns_cache_their_power_columns() {
    let dir = tmp("power");
    let with_power = |loads: &[f64]| {
        campaign(loads)
            .with_power(TechNode::N45)
            .with_cache_dir(&dir)
            .expect("open cache")
    };
    let cold = with_power(&NARROW).run();
    assert!(cold.points.iter().all(|p| p.power.is_some()));
    let warm = with_power(&NARROW).run();
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(
        warm.to_json(),
        cold.to_json(),
        "v2 JSON replays bit-exactly"
    );

    // Power and plain campaigns must not share cache keys: the same
    // coordinates without a tech node re-simulate.
    let plain = campaign(&NARROW)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(plain.cache_hits, 0, "tech is part of the cache key");
    assert_eq!(plain.cache_misses, points_per_run(&NARROW));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_points_round_trip_the_cache_under_their_own_keys() {
    // The fault recipe is part of the canonical setup string, hence of
    // the cache key: degraded-mode points replay byte-exactly, and a
    // fault-free campaign over the same coordinates never aliases them.
    let dir = tmp("faults");
    let storm = FaultsSpec {
        events: Vec::new(),
        storm: Some(StormSpec {
            links: 4,
            start: 200,
            window: 200,
            seed: 3,
        }),
    };
    let faulted = |dir: &PathBuf| {
        Campaign::new("fault-cache")
            .with_setups(vec![Setup::paper("sn54")
                .expect("paper config")
                .with_faults(storm.clone())])
            .with_patterns(vec![TrafficPattern::Random])
            .with_loads(vec![0.02, 0.05])
            .with_windows(150, 800)
            .with_cache_dir(dir)
            .expect("open cache")
    };
    let cold = faulted(&dir).run();
    assert_eq!(cold.cache_misses, 2);
    assert!(
        cold.points.iter().any(|p| p.dropped_packets > 0),
        "the storm must actually bite for this test to mean anything"
    );

    let warm = faulted(&dir).run();
    assert_eq!(warm.cache_misses, 0, "faulted points replay from cache");
    assert_eq!(warm.cache_hits, 2);
    assert_eq!(warm.to_json(), cold.to_json(), "byte-identical replay");

    // Faulted runs are deterministic across worker-thread counts, so
    // parallel campaigns hit the sequential run's cache entries.
    let threaded = faulted(&dir).with_threads(2).run();
    assert_eq!(threaded.cache_misses, 0, "thread count must not leak in");
    assert_eq!(threaded.to_json(), cold.to_json());

    // Same coordinates without the fault recipe: different keys.
    let plain = Campaign::new("fault-cache")
        .with_setups(vec![Setup::paper("sn54").expect("paper config")])
        .with_patterns(vec![TrafficPattern::Random])
        .with_loads(vec![0.02, 0.05])
        .with_windows(150, 800)
        .with_cache_dir(&dir)
        .expect("open cache")
        .run();
    assert_eq!(plain.cache_hits, 0, "faults are part of the cache key");
    assert_eq!(plain.cache_misses, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refined_points_are_cached_too() {
    // Refinement bisections carry deterministic loads, so they hit the
    // cache on replay exactly like grid points.
    let dir = tmp("refine");
    let c = |dir: &PathBuf| {
        Campaign::new("refine-cache")
            .with_setups(vec![Setup::paper("sn54").expect("paper config")])
            .with_patterns(vec![TrafficPattern::Random])
            // High tail load so the curve saturates and refinement has
            // a bracket to bisect.
            .with_loads(vec![0.05, 0.6])
            .with_windows(150, 500)
            .with_refinement(2)
            .with_cache_dir(dir)
            .expect("open cache")
    };
    let cold = c(&dir).run();
    let refined = cold.points.iter().filter(|p| p.refined).count();
    assert_eq!(refined, 2, "two bisection rounds");
    let warm = c(&dir).run();
    assert_eq!(warm.cache_misses, 0, "refined points replay from cache");
    assert_eq!(warm.cache_hits, cold.cache_misses);
    assert_eq!(warm.to_json(), cold.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
