//! Integration tests for the sweep-campaign engine: thread-count
//! determinism and adaptive saturation-knee refinement.

use snoc_core::{Campaign, Setup};
use snoc_sim::RoutingKind;
use snoc_traffic::TrafficPattern;

/// Same spec + same seed ⇒ bit-identical results for every worker
/// count. Seeds are derived from the point coordinates alone, so the
/// schedule (which worker runs which curve, in which order) must not
/// leak into the numbers.
#[test]
fn same_spec_is_bit_identical_across_thread_counts() {
    let campaign = |threads: usize| {
        Campaign::new("determinism")
            .with_setups(vec![
                Setup::paper("sn54").expect("paper config"),
                Setup::paper("fbf3").expect("paper config"),
            ])
            .with_patterns(vec![TrafficPattern::Random, TrafficPattern::Adversarial1])
            .with_loads(vec![0.02, 0.1, 0.3, 0.5])
            .with_windows(200, 800)
            .with_refinement(2)
            .with_seed(42)
            .with_threads(threads)
            .run()
    };
    let serial = campaign(1);
    let two = campaign(2);
    let auto = campaign(0);
    assert_eq!(serial, two, "1 vs 2 worker threads");
    assert_eq!(serial, auto, "1 vs auto worker threads");
    assert_eq!(serial.to_json(), auto.to_json(), "JSON byte-identical");
    // A different base seed must actually change the simulations.
    let other = Campaign::new("determinism")
        .with_setups(vec![
            Setup::paper("sn54").expect("paper config"),
            Setup::paper("fbf3").expect("paper config"),
        ])
        .with_patterns(vec![TrafficPattern::Random, TrafficPattern::Adversarial1])
        .with_loads(vec![0.02, 0.1, 0.3, 0.5])
        .with_windows(200, 800)
        .with_refinement(2)
        .with_seed(43)
        .run();
    assert_ne!(serial, other, "base seed must matter");
}

/// ADV1 on the 54-node Slim NoC maps each router's 3 nodes onto one
/// victim router, so minimal routing is capacity-limited to
/// 1/3 flit/node/cycle (one shared link). The adaptive refinement must
/// bracket that knee: the measured onset sits a little below the ideal
/// bound because finite injection queues back-pressure before the hard
/// capacity cap, but the accepted throughput at saturation pins the
/// 1/3 limit itself.
#[test]
fn adaptive_refinement_finds_adv1_knee_near_one_third() {
    let setup = Setup::paper("sn54")
        .expect("paper config")
        .with_routing(RoutingKind::Minimal);
    let result = Campaign::new("adv1-knee")
        .with_setups(vec![setup])
        .with_patterns(vec![TrafficPattern::Adversarial1])
        .with_loads(vec![0.1, 0.2, 0.3, 0.45, 0.6])
        .with_windows(500, 4_000)
        .with_refinement(4)
        .run();
    let refined: Vec<_> = result.points.iter().filter(|p| p.refined).collect();
    assert_eq!(refined.len(), 4, "four bisection rounds");
    // Every refined load lies inside the grid's knee bracket.
    for p in &refined {
        assert!((0.2..0.45).contains(&p.load), "refined load {}", p.load);
    }
    let knee = result
        .knee("sn54", "ADV1")
        .expect("curve must saturate within the grid");
    assert!(
        (0.25..=0.40).contains(&knee),
        "knee {knee} should be near 1/3"
    );
    // Refinement tightened the raw grid estimate (0.2, bracket width
    // 0.1): four bisections shrink the bracket 16-fold.
    let first_sat = result
        .curve("sn54", "ADV1")
        .find(|p| p.saturated)
        .map(|p| p.load)
        .expect("saturated point");
    assert!(knee > 0.2, "refinement must improve on the grid knee");
    assert!(
        first_sat - knee < 0.1 / 8.0 + 1e-9,
        "bracket [{knee}, {first_sat}] must be tight"
    );
    // The accepted throughput at the first saturated point is the
    // capacity bound — 1/3 flit/node/cycle for ADV1 under minimal
    // routing.
    let cap = result
        .curve("sn54", "ADV1")
        .find(|p| p.saturated)
        .map(|p| p.throughput)
        .expect("saturated point");
    assert!(
        (0.25..=0.38).contains(&cap),
        "saturation throughput {cap} should approach 1/3"
    );
}
