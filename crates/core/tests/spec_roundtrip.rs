//! Property test: the `slim_noc-spec-v1` JSON round trip is lossless
//! and byte-stable for every representable campaign spec.
//!
//! Byte stability matters beyond aesthetics here — the serialized
//! setup recipes feed the content-addressed cache keys, so any
//! serialize → parse → serialize drift would re-key (cold-start)
//! existing caches.

use proptest::prelude::*;
use snoc_core::{BufferPreset, CampaignSpec, SetupSpec};
use snoc_layout::SnLayout;
use snoc_power::TechNode;
use snoc_sim::RoutingKind;
use snoc_traffic::TrafficPattern;

const CONFIGS: [&str; 6] = ["sn54", "sn_s", "cm4", "t2d3", "df3", "fbf3"];
const PATTERNS: [TrafficPattern; 7] = [
    TrafficPattern::Random,
    TrafficPattern::BitShuffle,
    TrafficPattern::BitReversal,
    TrafficPattern::Adversarial1,
    TrafficPattern::Adversarial2,
    TrafficPattern::Asymmetric,
    TrafficPattern::Transpose,
];

/// Derives one arbitrary-but-deterministic setup recipe from an
/// integer seed (the vendored proptest only has range strategies, so
/// structured values are expanded from integers by hand).
fn setup_from(bits: u64) -> SetupSpec {
    let mut s = SetupSpec::new(CONFIGS[(bits % 6) as usize]);
    if bits & 0x40 != 0 {
        s.name = format!("{}+v{}", s.config, bits % 97);
    }
    s.sn_layout = match (bits >> 8) % 5 {
        0 => None,
        1 => Some(SnLayout::Basic),
        2 => Some(SnLayout::Subgroup),
        3 => Some(SnLayout::Group),
        _ => Some(SnLayout::Random(bits >> 16)),
    };
    s.smart = bits & 0x80 != 0;
    s.buffers = match (bits >> 3) % 5 {
        0 => BufferPreset::EbSmall,
        1 => BufferPreset::EbLarge,
        2 => BufferPreset::EbVar,
        3 => BufferPreset::ElLinks,
        _ => BufferPreset::Cbr(1 + usize::try_from((bits >> 24) % 64).expect("small")),
    };
    s.routing = match bits % 4 {
        0 => RoutingKind::Minimal,
        1 => RoutingKind::UgalL,
        2 => RoutingKind::UgalG,
        _ => RoutingKind::XyAdaptive,
    };
    s
}

/// A positive, finite, decimal-awkward load from an integer seed
/// (values like 1/3 exercise shortest-round-trip float printing).
fn load_from(bits: u64) -> f64 {
    (1 + bits % 99_991) as f64 / 99_989.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spec_json_round_trip_is_lossless_and_byte_stable(
        setup_bits in 1u64..u64::MAX,
        n_setups in 0usize..4,
        pattern_mask in 0u64..128,
        load_bits in 1u64..u64::MAX,
        n_loads in 1usize..6,
        warmup in 0u64..100_000,
        measure in 1u64..1_000_000,
        base_seed in 0u64..u64::MAX,
        refine in 0usize..5,
        options in 0u64..64,
    ) {
        let mut spec = CampaignSpec::new(format!("prop \"c{options}\""));
        spec.setups = (0..n_setups)
            .map(|i| setup_from(setup_bits.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64)))
            .collect();
        spec.patterns = PATTERNS
            .iter()
            .enumerate()
            .filter(|(i, _)| pattern_mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();
        spec.loads = (0..n_loads)
            .map(|i| load_from(load_bits.wrapping_add(0x1234_5678 * i as u64)))
            .collect();
        spec.warmup = warmup;
        spec.measure = measure;
        spec.base_seed = base_seed;
        spec.refine_rounds = refine;
        spec.stop_at_saturation = options & 1 != 0;
        spec.threads = usize::try_from(options >> 1).expect("small") % 9;
        spec.power_tech = match options % 4 {
            0 => None,
            1 => Some(TechNode::N45),
            2 => Some(TechNode::N22),
            _ => Some(TechNode::N11),
        };
        spec.cache_dir = if options & 8 != 0 {
            Some(format!("/tmp/cache \"{}\"", options))
        } else {
            None
        };

        let json1 = spec.to_json();
        let parsed = CampaignSpec::from_json(&json1)
            .map_err(|e| TestCaseError(format!("own output must parse: {e}\n{json1}")))?;
        // Lossless: every field (including f64 bits) survives.
        prop_assert_eq!(&parsed, &spec);
        for (a, b) in spec.loads.iter().zip(&parsed.loads) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // Byte-stable: serialize → parse → serialize is the identity.
        let json2 = parsed.to_json();
        prop_assert_eq!(json1, json2);
    }
}
