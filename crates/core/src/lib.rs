//! Experiment configurations, runners and reporting for the Slim NoC
//! reproduction.
//!
//! This crate glues the substrates together: it knows how the paper
//! configures each named network (Table 4 cycle times, per-topology VC
//! counts, buffer presets of §5.1), runs latency–load sweeps with
//! saturation detection, replays trace workloads, evaluates the power
//! model, and renders results as aligned text tables or CSV.
//!
//! # Example
//!
//! ```
//! use snoc_core::{BufferPreset, Setup};
//! use snoc_traffic::TrafficPattern;
//!
//! // The paper's SN-S configuration with SMART links.
//! let setup = Setup::paper("sn_s")?.with_smart(true);
//! let report = setup.run_load(TrafficPattern::Random, 0.02, 500, 1_500);
//! assert!(report.delivered_packets > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod faults;
pub mod json;
mod parallel;
mod report;
mod setup;
mod spec;
mod sweep;

pub use cache::{CachedPoint, PointCache, PointCoord, ENGINE_VERSION};
pub use faults::{FaultsSpec, StormSpec};
pub use parallel::{parallel_map, parallel_map_with_threads};
pub use report::{format_float, Series, TextTable};
pub use setup::{BufferPreset, Setup, SetupError};
pub use spec::{CampaignSpec, SetupSpec, SpecError};
pub use sweep::{Campaign, CampaignResult, PowerPoint, SweepPoint};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::{parallel_map, BufferPreset, Campaign, Series, Setup, TextTable};
}
