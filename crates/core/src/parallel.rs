//! Parallel experiment sweeps.
//!
//! Reproduction binaries run dozens of independent simulations (one per
//! curve point per configuration); this helper fans them out over
//! available cores with deterministic result ordering.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` in parallel, preserving input order in the
/// output. Uses scoped threads, so `f` may borrow from the environment.
///
/// # Panics
///
/// If `f` panics on any item, the first panic is re-raised on the
/// calling thread with the item index and the original message attached
/// (other workers stop taking new work).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with_threads(items, 0, f)
}

/// [`parallel_map`] with an explicit worker count (`0` = one per
/// available core). Output is identical for every thread count — the
/// sweep determinism tests rely on that.
///
/// # Panics
///
/// See [`parallel_map`].
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        threads
    }
    .min(items.len().max(1));
    let expected = items.len();
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(expected));
    // Worker panics are caught (never raised while a lock is held, so
    // the mutexes cannot be poisoned); the first one is recorded here
    // and re-raised with context after the scope joins.
    let failed = AtomicBool::new(false);
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break; // a sibling already panicked; stop early
                }
                let next = work.lock().expect("work queue lock").pop();
                let Some((idx, item)) = next else { break };
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => results.lock().expect("results lock").push((idx, out)),
                    Err(payload) => {
                        failed.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock().expect("panic slot lock");
                        if slot.is_none() {
                            *slot = Some((idx, payload));
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some((idx, payload)) = first_panic.into_inner().expect("panic slot lock") {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        panic!("parallel_map: worker panicked on item {idx}: {msg}");
    }
    let mut results = results.into_inner().expect("results lock");
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        let expect: Vec<i32> = (0..100).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn borrows_environment() {
        let offset = 7;
        let out = parallel_map(vec![1, 2, 3], |x: i32| x + offset);
        assert_eq!(out, vec![8, 9, 10]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let one = parallel_map_with_threads((0..64).collect(), 1, |x: u64| x.pow(3));
        let many = parallel_map_with_threads((0..64).collect(), 8, |x: u64| x.pow(3));
        assert_eq!(one, many);
    }

    #[test]
    fn worker_panic_propagates_with_context() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with_threads((0..8).collect(), 2, |x: i32| {
                assert!(x != 5, "item five is cursed");
                x
            })
        }))
        .expect_err("must propagate the worker panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.contains("worker panicked on item 5"), "{msg}");
        assert!(msg.contains("item five is cursed"), "{msg}");
    }
}
