//! Parallel experiment sweeps.
//!
//! Reproduction binaries run dozens of independent simulations (one per
//! curve point per configuration); this helper fans them out over
//! available cores with deterministic result ordering.

use std::sync::Mutex;

/// Maps `f` over `items` in parallel, preserving input order in the
/// output. Uses scoped threads, so `f` may borrow from the environment.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(items.len().max(1));
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = work.lock().expect("work queue poisoned").pop();
                let Some((idx, item)) = next else { break };
                let out = f(item);
                results.lock().expect("results poisoned").push((idx, out));
            });
        }
    });
    let mut results = results.into_inner().expect("results poisoned");
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        let expect: Vec<i32> = (0..100).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn borrows_environment() {
        let offset = 7;
        let out = parallel_map(vec![1, 2, 3], |x: i32| x + offset);
        assert_eq!(out, vec![8, 9, 10]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
