//! A minimal JSON reader for the offline build (no serde).
//!
//! The campaign-spec wire format, the content-addressed point cache,
//! and the `snoc serve` protocol all exchange JSON; this module is the
//! single parser behind them. Two properties matter more than speed:
//!
//! - **Numbers keep their source text.** Seeds are full 64-bit values
//!   that an `f64` detour would silently round; [`JsonValue::Num`]
//!   stores the raw token and [`JsonValue::as_u64`] /
//!   [`JsonValue::as_f64`] reparse it exactly as requested.
//! - **Objects keep their field order**, so a parse → serialize round
//!   trip of our own canonical output is byte-stable.
//!
//! The writer side stays hand-rolled in each producer (the sweep and
//! spec serializers pin their schemas byte-for-byte in golden tests);
//! this module only adds the shared escaping/compaction helpers.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source field order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match; objects are small here).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number reparsed as `u64` (exact; no float detour).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number reparsed as `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number reparsed as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).expect("ascii number token");
    // Validate by parsing as f64 (accepts every JSON number form).
    raw.parse::<f64>()
        .map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
    Ok(JsonValue::Num(raw.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate pairs are not produced by our own
                        // serializers; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// shared by every hand-rolled serializer in the workspace.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Compacts the workspace's line-oriented pretty JSON onto one line by
/// stripping newlines and leading indentation. Valid because our
/// serializers never break a line inside a string (control characters
/// are `\u`-escaped), so every line start is structural.
#[must_use]
pub fn compact(pretty: &str) -> String {
    pretty.lines().map(str::trim_start).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("\"a b\"").unwrap().as_str(), Some("a b"));
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("-2e3").unwrap().as_f64(), Some(-2000.0));
    }

    #[test]
    fn u64_numbers_survive_exactly() {
        let big = u64::MAX - 1;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big), "no f64 rounding detour");
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = parse(r#"{"b": [1, {"x": null}], "a": "z"}"#).unwrap();
        let JsonValue::Obj(fields) = &v else {
            panic!("object")
        };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("z"));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn escape_then_parse_round_trips() {
        let s = "quote\" slash\\ tab\t nl\n unicode é";
        let parsed = parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"open",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn compact_strips_structure_only() {
        let pretty = "{\n  \"a\": [1,\n    2],\n  \"s\": \"x y\"\n}\n";
        assert_eq!(compact(pretty), "{\"a\": [1,2],\"s\": \"x y\"}");
        assert!(parse(&compact(pretty)).is_ok());
    }
}
