//! Serializable fault recipes for degraded-mode campaigns.
//!
//! A [`FaultsSpec`] is the value-type twin of a live
//! [`snoc_sim::FaultPlan`]: explicit events, a seeded link storm, or
//! both, as plain data with a canonical one-line JSON form. It rides
//! inside a setup recipe (`SetupSpec.faults`), so it is part of the
//! `slim_noc-spec-v1` wire format *and* of the content-addressed cache
//! key — two campaign points that differ only in their fault recipe
//! never alias in the cache. Resolution against a concrete topology
//! happens at simulator-build time ([`FaultsSpec::resolve`]).

use crate::json::JsonValue;
use snoc_sim::{FaultEvent, FaultKind, FaultPlan};
use snoc_topology::{RouterId, Topology};
use std::fmt::Write as _;

/// A seeded "fault storm" recipe: `links` distinct links fail, chosen
/// by [`FaultPlan::storm`]'s seeded shuffle, spread evenly over
/// `[start, start + window)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Number of distinct links to fail (clamped to the link count).
    pub links: usize,
    /// Cycle of the first failure.
    pub start: u64,
    /// Failures spread over `[start, start + window)`.
    pub window: u64,
    /// Seed of the link shuffle.
    pub seed: u64,
}

/// The serializable fault recipe of one setup: explicit events and/or
/// a seeded storm. See the module docs for where it travels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultsSpec {
    /// Explicit fault events (applied alongside any storm).
    pub events: Vec<FaultEvent>,
    /// Seeded link storm over the setup's topology.
    pub storm: Option<StormSpec>,
}

impl FaultsSpec {
    /// `true` when the recipe schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.storm.is_none()
    }

    /// Resolves the recipe against a concrete topology: the storm's
    /// links are drawn from `topo`, merged with the explicit events
    /// into one normalized, cycle-sorted plan.
    #[must_use]
    pub fn resolve(&self, topo: &Topology) -> FaultPlan {
        let mut events = self.events.clone();
        if let Some(s) = self.storm {
            let storm = FaultPlan::storm(topo, s.links, s.start, s.window, s.seed);
            events.extend_from_slice(storm.events());
        }
        FaultPlan::new(events)
    }

    /// The recipe as a compact one-line JSON object — the wire form
    /// inside a setup recipe and part of the canonical string hashed
    /// into cache keys. Field order is fixed; `storm` is omitted when
    /// `None` and `events` when empty.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        if let Some(s) = self.storm {
            let _ = write!(
                out,
                "\"storm\": {{\"links\": {}, \"start\": {}, \"window\": {}, \"seed\": {}}}",
                s.links, s.start, s.window, s.seed
            );
            first = false;
        }
        if !self.events.is_empty() {
            if !first {
                out.push_str(", ");
            }
            out.push_str("\"events\": [");
            for (i, e) in self.events.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = match e.kind {
                    FaultKind::LinkDown { a, b } => write!(
                        out,
                        "{{\"at\": {}, \"kind\": \"link_down\", \"a\": {}, \"b\": {}}}",
                        e.cycle,
                        a.index(),
                        b.index()
                    ),
                    FaultKind::LinkUp { a, b } => write!(
                        out,
                        "{{\"at\": {}, \"kind\": \"link_up\", \"a\": {}, \"b\": {}}}",
                        e.cycle,
                        a.index(),
                        b.index()
                    ),
                    FaultKind::RouterDown { router } => write!(
                        out,
                        "{{\"at\": {}, \"kind\": \"router_down\", \"router\": {}}}",
                        e.cycle,
                        router.index()
                    ),
                };
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Parses the `faults` object of a setup recipe.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field,
    /// or of a recipe that schedules nothing at all.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let storm = match v.get("storm") {
            None | Some(JsonValue::Null) => None,
            Some(s) => {
                let field = |name: &str| -> Result<u64, String> {
                    s.get(name)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("faults storm missing u64 `{name}`"))
                };
                Some(StormSpec {
                    links: s
                        .get("links")
                        .and_then(JsonValue::as_usize)
                        .ok_or("faults storm missing usize `links`")?,
                    start: field("start")?,
                    window: field("window")?,
                    seed: field("seed")?,
                })
            }
        };
        let events = match v.get("events") {
            None => Vec::new(),
            Some(e) => e
                .as_arr()
                .ok_or("faults `events` must be an array")?
                .iter()
                .map(parse_event)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let spec = FaultsSpec { events, storm };
        if spec.is_empty() {
            return Err("faults recipe schedules nothing (need `storm` and/or `events`)".into());
        }
        Ok(spec)
    }
}

fn parse_event(v: &JsonValue) -> Result<FaultEvent, String> {
    let cycle = v
        .get("at")
        .and_then(JsonValue::as_u64)
        .ok_or("fault event missing u64 `at`")?;
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("fault event missing string `kind`")?;
    let router_field = |name: &str| -> Result<RouterId, String> {
        v.get(name)
            .and_then(JsonValue::as_usize)
            .map(RouterId)
            .ok_or_else(|| format!("fault event `{kind}` missing router index `{name}`"))
    };
    let kind = match kind {
        "link_down" => FaultKind::LinkDown {
            a: router_field("a")?,
            b: router_field("b")?,
        },
        "link_up" => FaultKind::LinkUp {
            a: router_field("a")?,
            b: router_field("b")?,
        },
        "router_down" => FaultKind::RouterDown {
            router: router_field("router")?,
        },
        other => {
            return Err(format!(
                "unknown fault kind `{other}` (link_down|link_up|router_down)"
            ))
        }
    };
    Ok(FaultEvent { cycle, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn full() -> FaultsSpec {
        FaultsSpec {
            events: vec![
                FaultEvent {
                    cycle: 100,
                    kind: FaultKind::LinkDown {
                        a: RouterId(5),
                        b: RouterId(0),
                    },
                },
                FaultEvent {
                    cycle: 900,
                    kind: FaultKind::LinkUp {
                        a: RouterId(0),
                        b: RouterId(5),
                    },
                },
                FaultEvent {
                    cycle: 1_200,
                    kind: FaultKind::RouterDown {
                        router: RouterId(3),
                    },
                },
            ],
            storm: Some(StormSpec {
                links: 4,
                start: 600,
                window: 800,
                seed: 7,
            }),
        }
    }

    #[test]
    fn canonical_json_round_trips() {
        let spec = full();
        let text = spec.canonical_json();
        let parsed = FaultsSpec::from_json_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.canonical_json(), text, "byte round trip");
    }

    #[test]
    fn storm_only_and_events_only_forms() {
        let storm_only = FaultsSpec {
            events: Vec::new(),
            ..full()
        };
        let text = storm_only.canonical_json();
        assert!(!text.contains("events"));
        let parsed = FaultsSpec::from_json_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, storm_only);
        let events_only = FaultsSpec {
            storm: None,
            ..full()
        };
        let text = events_only.canonical_json();
        assert!(!text.contains("storm"));
        let parsed = FaultsSpec::from_json_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, events_only);
    }

    #[test]
    fn empty_recipes_are_rejected() {
        let v = json::parse("{}").unwrap();
        assert!(FaultsSpec::from_json_value(&v).is_err());
        let v = json::parse(r#"{"events": []}"#).unwrap();
        assert!(FaultsSpec::from_json_value(&v).is_err());
        let v = json::parse(r#"{"events": [{"at": 1, "kind": "warp", "a": 0, "b": 1}]}"#).unwrap();
        assert!(FaultsSpec::from_json_value(&v).is_err(), "unknown kind");
    }

    #[test]
    fn resolve_merges_storm_and_events() {
        let topo = snoc_topology::Topology::slim_noc(3, 3).unwrap();
        let (a, b) = topo.links().next().unwrap();
        let spec = FaultsSpec {
            events: vec![
                FaultEvent {
                    cycle: 100,
                    kind: FaultKind::LinkDown { a, b },
                },
                FaultEvent {
                    cycle: 900,
                    kind: FaultKind::LinkUp { a, b },
                },
                FaultEvent {
                    cycle: 1_200,
                    kind: FaultKind::RouterDown {
                        router: RouterId(3),
                    },
                },
            ],
            ..full()
        };
        let plan = spec.resolve(&topo);
        // 3 explicit events + 4 storm links, sorted by cycle.
        assert_eq!(plan.events().len(), 7);
        assert!(plan.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        plan.validate(&topo).expect("all hardware exists");
        // Deterministic: same recipe, same plan.
        assert_eq!(plan.events(), spec.resolve(&topo).events());
    }
}
