//! Named experiment setups: topology + layout + simulator configuration
//! as the paper specifies them (§5.1, Table 4).

use crate::faults::FaultsSpec;
use snoc_layout::{per_router_central_buffers, BufferModel, BufferSpec, Layout, SnLayout};
use snoc_power::{PowerModel, TechNode};
use snoc_sim::{
    LatencyLoadPoint, RoutingKind, ShardedSimulator, SimConfig, SimError, SimReport, Simulator,
};
use snoc_topology::{paper_config, Topology, TopologyError, TopologyKind};
use snoc_traffic::{TraceWorkload, TrafficPattern};
use std::error::Error;
use std::fmt;

/// Buffering strategy presets from §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPreset {
    /// EB-Small: 5-flit edge buffers per VC.
    EbSmall,
    /// EB-Large: 15-flit edge buffers per VC.
    EbLarge,
    /// EB-Var: RTT-sized edge buffers (minimal sizes for 100% link
    /// utilization; `-S`/`-N` distinction comes from the SMART setting).
    EbVar,
    /// EL-Links: elastic links only (1-flit staging).
    ElLinks,
    /// CBR-x: central buffer router with `x` flits of central buffer.
    Cbr(usize),
}

impl fmt::Display for BufferPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferPreset::EbSmall => write!(f, "EB-Small"),
            BufferPreset::EbLarge => write!(f, "EB-Large"),
            BufferPreset::EbVar => write!(f, "EB-Var"),
            BufferPreset::ElLinks => write!(f, "EL-Links"),
            BufferPreset::Cbr(x) => write!(f, "CBR-{x}"),
        }
    }
}

impl BufferPreset {
    /// The stable lowercase name used by the `snoc` CLI and the
    /// campaign-spec wire format (`eb-small`, `cbr20`, …).
    #[must_use]
    pub fn spec_name(&self) -> String {
        match self {
            BufferPreset::EbSmall => "eb-small".to_string(),
            BufferPreset::EbLarge => "eb-large".to_string(),
            BufferPreset::EbVar => "eb-var".to_string(),
            BufferPreset::ElLinks => "el-links".to_string(),
            BufferPreset::Cbr(x) => format!("cbr{x}"),
        }
    }

    /// The inverse of [`BufferPreset::spec_name`].
    #[must_use]
    pub fn from_spec_name(name: &str) -> Option<BufferPreset> {
        Some(match name {
            "eb-small" => BufferPreset::EbSmall,
            "eb-large" => BufferPreset::EbLarge,
            "eb-var" => BufferPreset::EbVar,
            "el-links" => BufferPreset::ElLinks,
            other => BufferPreset::Cbr(other.strip_prefix("cbr")?.parse().ok()?),
        })
    }
}

/// Errors from setup construction.
#[derive(Debug)]
#[non_exhaustive]
pub enum SetupError {
    /// Unknown configuration or topology failure.
    Topology(TopologyError),
    /// Simulator rejected the configuration.
    Sim(SimError),
    /// Layout construction failed.
    Layout(snoc_layout::LayoutError),
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::Topology(e) => write!(f, "topology: {e}"),
            SetupError::Sim(e) => write!(f, "simulator: {e}"),
            SetupError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl Error for SetupError {}

impl From<TopologyError> for SetupError {
    fn from(e: TopologyError) -> Self {
        SetupError::Topology(e)
    }
}
impl From<SimError> for SetupError {
    fn from(e: SimError) -> Self {
        SetupError::Sim(e)
    }
}
impl From<snoc_layout::LayoutError> for SetupError {
    fn from(e: snoc_layout::LayoutError) -> Self {
        SetupError::Layout(e)
    }
}

/// A fully specified experiment configuration.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Display name (the paper's configuration name).
    pub name: String,
    /// The network topology.
    pub topology: Topology,
    /// The physical layout.
    pub layout: Layout,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Router cycle time in nanoseconds (0.4/0.5/0.6 per radix class).
    pub cycle_time_ns: f64,
    /// Buffer preset used (drives the power model's buffer term).
    pub buffers: BufferPreset,
    /// The paper-configuration name this setup was built from, when it
    /// was ([`Setup::paper`] records it; [`Setup::from_topology`] does
    /// not). Together with the builder state below it lets
    /// [`Setup::to_spec`](crate::spec::SetupSpec) reconstruct the
    /// serializable recipe of the setup; custom topologies have no
    /// recipe and are not spec-representable.
    pub paper_config: Option<String>,
    /// The Slim NoC layout applied via [`Setup::with_sn_layout`]
    /// (`None` for the natural layout or non-SN topologies).
    pub sn_layout: Option<SnLayout>,
    /// Fault recipe applied to every simulator this setup builds
    /// (`None` = fault-free). Resolved against the topology in
    /// [`Setup::simulator`]; forces the monolithic engine in
    /// [`Setup::run_load_sharded`].
    pub faults: Option<FaultsSpec>,
}

impl Setup {
    /// Builds a named paper configuration (Table 4 names such as
    /// `"sn_s"`, `"fbf3"`, `"pfbf9"`, `"t2d4"`; see
    /// [`snoc_topology::paper_config_names`]) with the §5.1 defaults:
    /// EB-Small buffers, credited links, no SMART, minimal routing, and
    /// per-topology VC counts (hop count of the longest minimal path).
    ///
    /// # Errors
    ///
    /// Returns [`SetupError`] for unknown names.
    pub fn paper(name: &str) -> Result<Self, SetupError> {
        let desc = paper_config(name)?;
        let mut setup = Setup::from_topology(name, desc.topology, desc.cycle_time_ns)?;
        setup.paper_config = Some(name.to_string());
        Ok(setup)
    }

    /// Builds a setup from an arbitrary topology with natural layout.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError`] if the simulator configuration is invalid.
    pub fn from_topology(
        name: &str,
        topology: Topology,
        cycle_time_ns: f64,
    ) -> Result<Self, SetupError> {
        let layout = Layout::natural(&topology);
        // Deadlock freedom for hop-indexed VCs needs |VC| >= max hops;
        // meshes/tori use DOR+dateline and stay at 2.
        let vcs = match topology.kind() {
            TopologyKind::Mesh { .. } | TopologyKind::Torus { .. } => 2,
            _ => topology.diameter().max(2),
        };
        let sim = SimConfig::default().with_vcs(vcs);
        Ok(Setup {
            name: name.to_string(),
            topology,
            layout,
            sim,
            cycle_time_ns,
            buffers: BufferPreset::EbSmall,
            paper_config: None,
            sn_layout: None,
            faults: None,
        })
    }

    /// Switches the Slim NoC layout (no-op for other topologies).
    ///
    /// # Errors
    ///
    /// Never fails for Slim NoC topologies; returns the unchanged setup
    /// otherwise.
    pub fn with_sn_layout(mut self, which: SnLayout) -> Result<Self, SetupError> {
        if matches!(self.topology.kind(), TopologyKind::SlimNoc { .. }) {
            self.layout = Layout::slim_noc(&self.topology, which)?;
            self.sn_layout = Some(which);
        }
        Ok(self)
    }

    /// Enables or disables SMART links (`H = 9` vs `H = 1`).
    #[must_use]
    pub fn with_smart(mut self, smart: bool) -> Self {
        self.sim.smart_hops = if smart { 9 } else { 1 };
        self
    }

    /// Applies a buffering preset.
    #[must_use]
    pub fn with_buffers(mut self, preset: BufferPreset) -> Self {
        let vcs = self.sim.vcs;
        let smart = self.sim.smart_hops;
        let routing = self.sim.routing;
        let seed = self.sim.seed;
        self.sim = match preset {
            BufferPreset::EbSmall => SimConfig::eb_small(),
            BufferPreset::EbLarge => SimConfig::eb_large(),
            BufferPreset::EbVar => SimConfig::eb_var(),
            BufferPreset::ElLinks => SimConfig::elastic_links(),
            BufferPreset::Cbr(x) => SimConfig::cbr(x),
        };
        self.sim.vcs = vcs;
        self.sim.smart_hops = smart;
        self.sim.routing = routing;
        self.sim.seed = seed;
        self.buffers = preset;
        self
    }

    /// Selects the routing algorithm (UGAL variants force 4 VCs to cover
    /// the doubled Valiant path length).
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.sim.routing = routing;
        if matches!(routing, RoutingKind::UgalL | RoutingKind::UgalG) {
            self.sim.vcs = self.sim.vcs.max(4);
        }
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Attaches a fault recipe: every simulator this setup builds runs
    /// it live (link/router failures mid-run, dropped packets counted,
    /// routing self-healed). Fault injection is supported on the
    /// edge-buffer + credited-link + minimal-routing envelope; other
    /// configurations fail at [`Setup::simulator`] time.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultsSpec) -> Self {
        self.faults = if faults.is_empty() {
            None
        } else {
            Some(faults)
        };
        self
    }

    /// Builds the simulator for this setup, with the fault recipe (if
    /// any) resolved against the topology and scheduled.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError::Sim`] when the configuration is invalid or
    /// the fault recipe is outside the supported envelope.
    pub fn simulator(&self) -> Result<Simulator, SetupError> {
        let mut sim = Simulator::build_with_layout(&self.topology, &self.layout, &self.sim)?;
        if let Some(faults) = &self.faults {
            sim.set_fault_plan(&faults.resolve(&self.topology))?;
        }
        Ok(sim)
    }

    /// Runs one synthetic-traffic point.
    ///
    /// # Panics
    ///
    /// Panics if the setup cannot construct a simulator (all presets in
    /// this crate can), or if the simulator's no-progress watchdog
    /// aborts the run — a wedged point would otherwise be silently
    /// folded into campaign statistics, so it fails loudly with the
    /// full deadlock diagnostic instead.
    pub fn run_load(
        &self,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        let mut sim = self.simulator().expect("valid setup");
        let report = sim.run_synthetic(pattern, rate, warmup, measure);
        if let Some(diag) = &report.deadlock {
            panic!("simulation deadlocked ({}): {diag}", self.name);
        }
        report
    }

    /// Runs one synthetic-traffic point on the sharded parallel engine.
    /// `shards <= 1` uses the monolithic simulator, as do configurations
    /// the sharded engine rejects (globally-adaptive routing, elastic
    /// links) and setups with a fault recipe (replicated shards never
    /// see fault plans) — those fall back rather than fail so mixed
    /// campaigns keep running. Exact-mode configurations produce reports
    /// bit-identical to [`Setup::run_load`] at any shard count.
    ///
    /// # Panics
    ///
    /// Panics if the setup cannot construct a simulator (all presets in
    /// this crate can).
    pub fn run_load_sharded(
        &self,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
        shards: usize,
    ) -> SimReport {
        if shards > 1 && self.faults.is_none() {
            if let Ok(mut sim) =
                ShardedSimulator::build_with_layout(&self.topology, &self.layout, &self.sim, shards)
            {
                return sim.run_synthetic(pattern, rate, warmup, measure);
            }
        }
        self.run_load(pattern, rate, warmup, measure)
    }

    /// Sweeps a latency–load curve, stopping after the first saturated
    /// point (as the paper's figures do: "we omit performance data for
    /// points after network saturation").
    pub fn latency_load_curve(
        &self,
        pattern: TrafficPattern,
        loads: &[f64],
        warmup: u64,
        measure: u64,
    ) -> Vec<LatencyLoadPoint> {
        let mut points = Vec::new();
        let mut zero_load = 0.0;
        for &load in loads {
            let report = self.run_load(pattern, load, warmup, measure);
            if zero_load == 0.0 {
                zero_load = report.avg_packet_latency();
            }
            let saturated = report.is_saturated(zero_load);
            points.push(LatencyLoadPoint {
                load,
                latency: report.avg_packet_latency(),
                throughput: report.throughput(),
                saturated,
            });
            if saturated {
                break;
            }
        }
        points
    }

    /// Estimates saturation throughput: the highest accepted throughput
    /// over a geometric load sweep.
    pub fn saturation_throughput(&self, pattern: TrafficPattern, warmup: u64, measure: u64) -> f64 {
        let mut best: f64 = 0.0;
        let mut load = 0.05;
        while load <= 1.0 {
            let report = self.run_load(pattern, load, warmup, measure);
            best = best.max(report.throughput());
            if report.acceptance() < 0.8 {
                break;
            }
            load *= 1.6;
        }
        best
    }

    /// Runs a PARSEC/SPLASH-like trace workload.
    pub fn run_trace_workload(&self, workload: &TraceWorkload, cycles: u64) -> SimReport {
        let trace = workload.generate(&self.topology, cycles, self.sim.seed);
        let mut sim = self.simulator().expect("valid setup");
        sim.run_trace(&trace, cycles / 10)
    }

    /// Total buffer flits in one router under the active preset — the
    /// buffer term for the power model (Eqs. 5–6).
    #[must_use]
    pub fn buffer_flits_per_router(&self) -> usize {
        let spec = BufferSpec {
            vcs: self.sim.vcs,
            smart_hops: self.sim.smart_hops,
        };
        match self.buffers {
            BufferPreset::EbVar => BufferModel::edge_buffers(&self.topology, &self.layout, spec)
                .average_per_router()
                .round() as usize,
            BufferPreset::EbSmall | BufferPreset::EbLarge => {
                let per_vc = if self.buffers == BufferPreset::EbSmall {
                    5
                } else {
                    15
                };
                self.topology.network_radix() * self.sim.vcs * per_vc
            }
            BufferPreset::ElLinks => self.topology.network_radix() * self.sim.vcs,
            BufferPreset::Cbr(x) => per_router_central_buffers(&self.topology, x, self.sim.vcs),
        }
    }

    /// The power model configured for this setup's cycle time.
    #[must_use]
    pub fn power_model(&self, tech: TechNode) -> PowerModel {
        PowerModel::new(tech).with_cycle_time(self.cycle_time_ns)
    }

    /// Feeds a measured simulation report into the power model: the
    /// activity factors the simulator counted (buffer reads/writes,
    /// crossbar traversals, allocator grants, link flit·tiles) drive
    /// the dynamic-power terms directly.
    #[must_use]
    pub fn power_report(&self, tech: TechNode, report: &SimReport) -> snoc_power::PowerReport {
        self.power_model(tech).evaluate_from_sim(
            report,
            &self.topology,
            &self.layout,
            self.buffer_flits_per_router(),
        )
    }

    /// Full §5.4-style evaluation: run traffic, then feed activity into
    /// the power model.
    pub fn evaluate_power(
        &self,
        tech: TechNode,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> snoc_power::PowerReport {
        let report = self.run_load(pattern, rate, warmup, measure);
        self.power_report(tech, &report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_sim::RouterArch;

    #[test]
    fn paper_setups_build_and_run() {
        for name in ["sn54", "t2d54", "cm54", "fbf54", "pfbf54"] {
            let setup = Setup::paper(name).unwrap();
            let report = setup.run_load(TrafficPattern::Random, 0.03, 300, 1_000);
            assert!(report.delivered_packets > 0, "{name}: {report}");
        }
    }

    #[test]
    fn vc_counts_cover_diameter() {
        assert_eq!(Setup::paper("sn_s").unwrap().sim.vcs, 2);
        assert_eq!(Setup::paper("pfbf3").unwrap().sim.vcs, 4);
        assert_eq!(Setup::paper("t2d4").unwrap().sim.vcs, 2);
        assert_eq!(Setup::paper("fbf3").unwrap().sim.vcs, 2);
    }

    #[test]
    fn buffer_presets_apply() {
        let s = Setup::paper("sn54").unwrap();
        let cbr = s.clone().with_buffers(BufferPreset::Cbr(20));
        assert!(matches!(
            cbr.sim.router_arch,
            RouterArch::CentralBuffer { cb_flits: 20 }
        ));
        assert_eq!(cbr.sim.vcs, s.sim.vcs, "vcs preserved across preset");
        let var = s.clone().with_buffers(BufferPreset::EbVar);
        assert!(var.simulator().is_ok(), "EB-Var works with a layout");
    }

    #[test]
    fn buffer_flits_per_router_values() {
        let s = Setup::paper("sn54").unwrap();
        // EB-Small: k' * vcs * 5 = 5 * 2 * 5.
        assert_eq!(s.buffer_flits_per_router(), 50);
        let cbr = s.clone().with_buffers(BufferPreset::Cbr(20));
        // Eq. 6 per router: 20 + 2 * 5 * 2 = 40.
        assert_eq!(cbr.buffer_flits_per_router(), 40);
        let el = s.with_buffers(BufferPreset::ElLinks);
        assert_eq!(el.buffer_flits_per_router(), 10);
    }

    #[test]
    fn smart_toggles_h() {
        let s = Setup::paper("sn54").unwrap();
        assert_eq!(s.sim.smart_hops, 1);
        assert_eq!(s.clone().with_smart(true).sim.smart_hops, 9);
        assert_eq!(s.with_smart(true).with_smart(false).sim.smart_hops, 1);
    }

    #[test]
    fn ugal_forces_four_vcs() {
        let s = Setup::paper("sn_s")
            .unwrap()
            .with_routing(RoutingKind::UgalL);
        assert_eq!(s.sim.vcs, 4);
    }

    #[test]
    fn latency_load_curve_stops_at_saturation() {
        let setup = Setup::paper("sn54").unwrap();
        let loads = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
        let curve = setup.latency_load_curve(TrafficPattern::Random, &loads, 300, 1_200);
        assert!(!curve.is_empty());
        // Monotone non-decreasing latency along the curve (tolerantly).
        for pair in curve.windows(2) {
            assert!(
                pair[1].latency > pair[0].latency * 0.8,
                "latency curve should trend upward"
            );
        }
        // If saturation was hit, it is the last point.
        for (i, p) in curve.iter().enumerate() {
            if p.saturated {
                assert_eq!(i, curve.len() - 1);
            }
        }
    }

    #[test]
    fn saturation_throughput_is_positive_and_bounded() {
        let setup = Setup::paper("sn54").unwrap();
        let thpt = setup.saturation_throughput(TrafficPattern::Random, 300, 1_000);
        assert!(thpt > 0.05, "throughput {thpt}");
        assert!(thpt <= 1.0);
    }

    #[test]
    fn trace_workload_runs() {
        let setup = Setup::paper("sn54").unwrap();
        let w = TraceWorkload::by_name("fft").unwrap();
        let report = setup.run_trace_workload(&w, 2_000);
        assert!(report.delivered_packets > 0, "{report}");
    }

    #[test]
    fn unknown_name_is_an_error() {
        assert!(Setup::paper("hyperx").is_err());
    }
}
