//! Result rendering: aligned text tables and CSV for the reproduction
//! binaries.

use std::fmt::Write as _;

/// Formats a float with `prec` decimals, trimming to a compact form.
#[must_use]
pub fn format_float(x: f64, prec: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let ax = x.abs();
    if (0.01..1e6).contains(&ax) {
        format!("{x:.prec$}")
    } else {
        format!("{x:.prec$e}")
    }
}

/// An aligned text table with a title, printable to stdout or CSV.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    /// Table title (figure/table identifier in the repro binaries).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cells[i], width = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (headers + rows; the title becomes a
    /// comment line).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table (text or CSV depending on the flag).
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            println!("{}", self.render());
        }
    }
}

/// A named data series (one curve of a figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Curve label.
    pub name: String,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Converts several series into one table keyed by x (missing
    /// values print as `-`). X values are matched exactly by formatting.
    #[must_use]
    pub fn tabulate(title: impl Into<String>, x_label: &str, series: &[Series]) -> TextTable {
        let mut headers = vec![x_label];
        for s in series {
            headers.push(&s.name);
        }
        let mut table = TextTable::new(title, &headers);
        // Collect x values in first-seen order.
        let mut xs: Vec<String> = Vec::new();
        for s in series {
            for &(x, _) in &s.points {
                let key = format_float(x, 4);
                if !xs.contains(&key) {
                    xs.push(key);
                }
            }
        }
        for x in &xs {
            let mut row = vec![x.clone()];
            for s in series {
                let v = s
                    .points
                    .iter()
                    .find(|(px, _)| &format_float(*px, 4) == x)
                    .map(|(_, y)| format_float(*y, 3));
                row.push(v.unwrap_or_else(|| "-".to_string()));
            }
            table.push_row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(0.0, 3), "0");
        assert_eq!(format_float(1.5, 2), "1.50");
        assert_eq!(format_float(1234.5678, 1), "1234.6");
        assert!(format_float(1.0e-7, 2).contains('e'));
        assert!(format_float(3.0e9, 2).contains('e'));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22222".into()]);
        let r = t.render();
        assert!(r.contains("# Demo"));
        assert!(r.contains("alpha"));
        let lines: Vec<&str> = r.lines().collect();
        // header, separator, two rows.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn series_tabulation_merges_x_values() {
        let mut a = Series::new("sn");
        a.push(0.01, 20.0);
        a.push(0.02, 22.0);
        let mut b = Series::new("fbf");
        b.push(0.01, 25.0);
        let t = Series::tabulate("Fig", "load", &[a, b]);
        assert_eq!(t.headers, vec!["load", "sn", "fbf"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][2], "-");
    }
}
