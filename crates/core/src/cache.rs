//! Content-addressed campaign point cache.
//!
//! Every simulated sweep point is fully determined by its *coordinate*:
//! the setup recipe, the traffic pattern, the exact load bits, the
//! simulation windows, the campaign base seed, and the power technology
//! node (per-point seeds are derived from exactly these, see
//! [`Campaign::point_seed`](crate::Campaign::point_seed)). A
//! [`PointCache`] keys each point by a 128-bit hash of that coordinate
//! salted with [`ENGINE_VERSION`], and persists the measured scalars as
//! JSON-lines under a cache directory.
//!
//! A [`Campaign`](crate::Campaign) with an attached cache
//! ([`Campaign::with_cache_dir`](crate::Campaign::with_cache_dir))
//! consults it before simulating: a widened sweep re-simulates only the
//! points that are genuinely new, and the merged result is
//! **byte-identical** to a cold run of the widened spec — floats are
//! persisted as raw `f64` bit patterns and per-curve state (the
//! zero-load reference latency, saturation flags) is recomputed from
//! the cached scalars through the same
//! [`saturation_heuristic`](snoc_sim::saturation_heuristic) the
//! simulator itself uses.
//!
//! Invalidation is by construction: the salt makes stale entries
//! unreachable (their keys never match), so bumping [`ENGINE_VERSION`]
//! when simulator behavior changes retires an entire cache without
//! deleting files.

use crate::json;
use crate::sweep::PowerPoint;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The engine-version salt mixed into every cache key.
///
/// Bump this whenever simulator behavior changes in a way that alters
/// measured numbers (router pipeline, routing, RNG streams, saturation
/// heuristic, …). Entries written under an older salt remain in the
/// JSONL file but become unreachable — a version bump invalidates a
/// cache without touching the filesystem.
pub const ENGINE_VERSION: &str = "slim_noc-engine-v1";

/// The name of the JSON-lines store inside a cache directory.
const STORE_FILE: &str = "points.jsonl";

/// The spec-derived coordinate of one simulated point — everything the
/// simulation outcome depends on, and nothing it doesn't (thread count
/// and execution order are deliberately absent).
#[derive(Debug, Clone, PartialEq)]
pub struct PointCoord<'a> {
    /// Canonical setup-recipe JSON
    /// ([`SetupSpec::canonical_json`](crate::SetupSpec::canonical_json));
    /// includes the setup *name*, which feeds the per-point seed.
    pub setup_spec: &'a str,
    /// Traffic-pattern short name (`RND`, `ADV1`, …).
    pub pattern: &'a str,
    /// Offered load; hashed by exact bit pattern.
    pub load: f64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Campaign base seed.
    pub base_seed: u64,
    /// Simulation-engine shard count. Only part of the canonical form
    /// when above 1, so keys minted before sharding existed stay valid.
    pub shards: usize,
    /// Power technology node (`45nm`, …) for power-aware campaigns;
    /// `None` for plain latency sweeps.
    pub tech: Option<&'a str>,
}

impl PointCoord<'_> {
    /// The canonical coordinate string that gets hashed into the key.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"setup\": {}, \"pattern\": \"{}\", \"load_bits\": {}, \
             \"warmup\": {}, \"measure\": {}, \"base_seed\": {}",
            self.setup_spec,
            self.pattern,
            self.load.to_bits(),
            self.warmup,
            self.measure,
            self.base_seed,
        );
        if self.shards > 1 {
            let _ = write!(out, ", \"shards\": {}", self.shards);
        }
        if let Some(tech) = self.tech {
            let _ = write!(out, ", \"tech\": \"{tech}\"");
        }
        out.push('}');
        out
    }
}

/// The measured scalars of one point — exactly what is needed to
/// reconstruct its [`SweepPoint`](crate::SweepPoint) bit-for-bit
/// within any (possibly widened) campaign, plus `injected_packets` so
/// the saturation flag can be re-derived against the hosting curve's
/// zero-load reference.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPoint {
    /// Average packet latency in cycles.
    pub latency: f64,
    /// 99th-percentile packet latency in cycles.
    pub p99_latency: u64,
    /// Accepted throughput in flits/node/cycle.
    pub throughput: f64,
    /// Average network hops per packet.
    pub avg_hops: f64,
    /// Fraction of offered packets accepted into injection queues.
    pub acceptance: f64,
    /// Measured packets delivered.
    pub delivered_packets: u64,
    /// Packets dropped by live fault injection. Absent from stored
    /// lines when zero, so fault-free entries keep their pre-fault
    /// wire form.
    pub dropped_packets: u64,
    /// Measured packets injected (saturation-heuristic input).
    pub injected_packets: u64,
    /// Whether the network fully drained.
    pub drained: bool,
    /// Power/area columns (power-aware campaigns only).
    pub power: Option<PowerPoint>,
}

impl CachedPoint {
    /// Serializes as one JSON line (floats as raw bit patterns, so the
    /// round trip is exact for every value including NaN).
    fn to_line(&self, key: &str) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"key\": \"{key}\", \"latency\": {}, \"p99\": {}, \
             \"throughput\": {}, \"avg_hops\": {}, \"acceptance\": {}, \
             \"delivered\": {}, \"injected\": {}, \"drained\": {}",
            self.latency.to_bits(),
            self.p99_latency,
            self.throughput.to_bits(),
            self.avg_hops.to_bits(),
            self.acceptance.to_bits(),
            self.delivered_packets,
            self.injected_packets,
            self.drained,
        );
        if self.dropped_packets > 0 {
            let _ = write!(out, ", \"dropped\": {}", self.dropped_packets);
        }
        if let Some(p) = &self.power {
            let bits = [
                p.power_w,
                p.static_w,
                p.dynamic_w,
                p.area_mm2,
                p.throughput_per_watt,
                p.energy_per_flit_j,
                p.edp_js,
            ]
            .map(|x| x.to_bits().to_string())
            .join(", ");
            let _ = write!(out, ", \"power\": [{bits}]");
        }
        out.push('}');
        out
    }

    /// Parses one JSON line; returns the key alongside the point.
    fn from_line(line: &str) -> Option<(String, CachedPoint)> {
        let v = json::parse(line).ok()?;
        let key = v.get("key")?.as_str()?.to_string();
        let f = |field: &str| Some(f64::from_bits(v.get(field)?.as_u64()?));
        let power = match v.get("power") {
            None => None,
            Some(arr) => {
                let bits = arr.as_arr()?;
                if bits.len() != 7 {
                    return None;
                }
                let mut vals = [0.0f64; 7];
                for (slot, b) in vals.iter_mut().zip(bits) {
                    *slot = f64::from_bits(b.as_u64()?);
                }
                Some(PowerPoint {
                    power_w: vals[0],
                    static_w: vals[1],
                    dynamic_w: vals[2],
                    area_mm2: vals[3],
                    throughput_per_watt: vals[4],
                    energy_per_flit_j: vals[5],
                    edp_js: vals[6],
                })
            }
        };
        Some((
            key,
            CachedPoint {
                latency: f("latency")?,
                p99_latency: v.get("p99")?.as_u64()?,
                throughput: f("throughput")?,
                avg_hops: f("avg_hops")?,
                acceptance: f("acceptance")?,
                delivered_packets: v.get("delivered")?.as_u64()?,
                dropped_packets: match v.get("dropped") {
                    None => 0,
                    Some(d) => d.as_u64()?,
                },
                injected_packets: v.get("injected")?.as_u64()?,
                drained: v.get("drained")?.as_bool()?,
                power,
            },
        ))
    }
}

/// A persistent, thread-safe, content-addressed store of simulated
/// campaign points.
///
/// Shared across campaigns (and across server clients) behind an
/// `Arc`; lookups and inserts lock only briefly, so worker threads stay
/// parallel. Lifetime hit/miss counters aggregate across every
/// campaign that used the cache — per-run counters live on
/// [`CampaignResult`](crate::CampaignResult) instead.
pub struct PointCache {
    dir: PathBuf,
    version: String,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Store lines skipped as unparseable at open time.
    corrupt_lines: u64,
}

struct Inner {
    map: HashMap<String, CachedPoint>,
    store: File,
}

impl fmt::Debug for PointCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PointCache")
            .field("dir", &self.dir)
            .field("version", &self.version)
            .field("entries", &self.len())
            .finish()
    }
}

impl PointCache {
    /// Opens (creating if needed) the cache at `dir` under the current
    /// [`ENGINE_VERSION`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory or opening
    /// the store file. Malformed store lines are skipped, not errors —
    /// a truncated final line from an interrupted run must not poison
    /// the cache.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<PointCache> {
        Self::open_with_version(dir, ENGINE_VERSION)
    }

    /// Opens the cache under an explicit version salt (tests use this
    /// to prove stale-engine entries never hit).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; see [`PointCache::open`].
    pub fn open_with_version(dir: impl AsRef<Path>, version: &str) -> io::Result<PointCache> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let path = dir.join(STORE_FILE);
        let mut map = HashMap::new();
        let mut corrupt_lines = 0u64;
        if path.exists() {
            // Split raw bytes rather than iterating `lines()`: a torn
            // final line from an interrupted append may hold arbitrary
            // bytes, and an invalid-UTF-8 read error must degrade to a
            // skipped line, not abort the whole open.
            let bytes = fs::read(&path)?;
            for raw in bytes.split(|&b| b == b'\n') {
                if raw.is_empty() {
                    continue;
                }
                match std::str::from_utf8(raw)
                    .ok()
                    .and_then(CachedPoint::from_line)
                {
                    Some((key, point)) => {
                        map.insert(key, point); // last write wins
                    }
                    None => corrupt_lines += 1,
                }
            }
        }
        let store = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(PointCache {
            dir,
            version: version.to_string(),
            inner: Mutex::new(Inner { map, store }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt_lines,
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of a coordinate: 32 hex chars of a 128-bit
    /// hash over the version salt and the canonical coordinate string.
    #[must_use]
    pub fn key(&self, coord: &PointCoord<'_>) -> String {
        let text = format!("{}\n{}", self.version, coord.canonical());
        let a = mix64(0xcbf2_9ce4_8422_2325, text.as_bytes());
        let b = mix64(0x9e37_79b9_7f4a_7c15 ^ a, text.as_bytes());
        format!("{a:016x}{b:016x}")
    }

    /// Looks up a key, counting the lifetime hit or miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<CachedPoint> {
        let found = self.inner.lock().expect("cache lock").map.get(key).cloned();
        let counter = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Inserts a point and appends it to the JSONL store.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write errors.
    pub fn put(&self, key: &str, point: &CachedPoint) -> io::Result<()> {
        let line = point.to_line(key);
        let mut inner = self.inner.lock().expect("cache lock");
        writeln!(inner.store, "{line}")?;
        inner.map.insert(key.to_string(), point.clone());
        Ok(())
    }

    /// Number of reachable entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hits since this cache was opened.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime misses since this cache was opened.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Store lines skipped as unparseable when this cache was opened
    /// (a torn final line from an interrupted append, a manual edit, a
    /// partial disk write — anything the stored-line parser or
    /// UTF-8 validation rejects).
    #[must_use]
    pub fn corrupt_lines(&self) -> u64 {
        self.corrupt_lines
    }
}

/// FNV-1a with a caller-chosen basis, finished with the splitmix64
/// avalanche — the same construction the per-point seeds use.
fn mix64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snoc_cache_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn coord(load: f64) -> PointCoord<'static> {
        PointCoord {
            setup_spec: "{\"config\": \"sn54\"}",
            pattern: "RND",
            load,
            warmup: 100,
            measure: 400,
            base_seed: 7,
            shards: 1,
            tech: None,
        }
    }

    fn sample() -> CachedPoint {
        CachedPoint {
            latency: 12.625,
            p99_latency: 40,
            throughput: 0.1 + 0.2, // deliberately inexact decimal
            avg_hops: 1.5,
            acceptance: f64::NAN, // bit-exactness must survive NaN
            delivered_packets: 1234,
            dropped_packets: 21,
            injected_packets: 1300,
            drained: true,
            power: Some(PowerPoint {
                power_w: 1.25,
                static_w: 0.5,
                dynamic_w: 0.75,
                area_mm2: 3.0,
                throughput_per_watt: 2.0e9,
                energy_per_flit_j: 5.0e-10,
                edp_js: 1.0e-12,
            }),
        }
    }

    #[test]
    fn keys_depend_on_every_coordinate_and_the_salt() {
        let dir = tmp("keys");
        let cache = PointCache::open(&dir).unwrap();
        let base = cache.key(&coord(0.05));
        assert_eq!(base.len(), 32);
        assert_eq!(base, cache.key(&coord(0.05)), "stable");
        assert_ne!(base, cache.key(&coord(0.06)));
        let mut c = coord(0.05);
        c.pattern = "ADV1";
        assert_ne!(base, cache.key(&c));
        let mut c = coord(0.05);
        c.base_seed = 8;
        assert_ne!(base, cache.key(&c));
        let mut c = coord(0.05);
        c.tech = Some("45nm");
        assert_ne!(base, cache.key(&c));
        let mut c = coord(0.05);
        c.shards = 4;
        assert_ne!(base, cache.key(&c));
        let salted = PointCache::open_with_version(&dir, "other-engine").unwrap();
        assert_ne!(base, salted.key(&coord(0.05)), "salt changes keys");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_bit_exactly_through_disk() {
        let dir = tmp("roundtrip");
        let point = sample();
        let key;
        {
            let cache = PointCache::open(&dir).unwrap();
            key = cache.key(&coord(0.05));
            assert!(cache.get(&key).is_none());
            cache.put(&key, &point).unwrap();
            assert!(cache.get(&key).is_some());
            assert_eq!((cache.hits(), cache.misses()), (1, 1));
        }
        // Fresh process-equivalent: reopen from disk.
        let cache = PointCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        let back = cache.get(&key).expect("persisted");
        assert_eq!(back.latency.to_bits(), point.latency.to_bits());
        assert_eq!(back.throughput.to_bits(), point.throughput.to_bits());
        assert!(back.acceptance.is_nan(), "NaN survives the round trip");
        assert_eq!(back.power, point.power);
        // NaN was checked above; neutralize it so derived PartialEq
        // (NaN != NaN) can compare the rest.
        let mut expect = point.clone();
        expect.acceptance = 0.0;
        let mut got = back.clone();
        got.acceptance = 0.0;
        assert_eq!(got, expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_engine_entries_never_hit() {
        let dir = tmp("salt");
        let old = PointCache::open_with_version(&dir, "engine-old").unwrap();
        old.put(&old.key(&coord(0.05)), &sample()).unwrap();
        drop(old);
        let new = PointCache::open(&dir).unwrap();
        assert_eq!(new.len(), 1, "entry still on disk");
        assert!(
            new.get(&new.key(&coord(0.05))).is_none(),
            "but unreachable under the current ENGINE_VERSION"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_are_skipped_and_last_write_wins() {
        let dir = tmp("corrupt");
        let cache = PointCache::open(&dir).unwrap();
        let key = cache.key(&coord(0.05));
        cache.put(&key, &sample()).unwrap();
        let mut newer = sample();
        newer.delivered_packets = 9_999;
        cache.put(&key, &newer).unwrap();
        drop(cache);
        // Simulate an interrupted append.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(STORE_FILE))
            .unwrap();
        write!(f, "{{\"key\": \"trunc").unwrap();
        drop(f);
        let cache = PointCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.corrupt_lines(), 1);
        assert_eq!(cache.get(&key).unwrap().delivered_packets, 9_999);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_binary_tail_does_not_brick_the_cache() {
        let dir = tmp("torn_tail");
        let cache = PointCache::open(&dir).unwrap();
        let key = cache.key(&coord(0.05));
        cache.put(&key, &sample()).unwrap();
        drop(cache);
        // A crash mid-append can leave arbitrary (non-UTF-8) bytes as
        // the final line; the reopen must skip it, not error out.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(STORE_FILE))
            .unwrap();
        f.write_all(b"{\"key\": \"to\xffrn\x80\xfe").unwrap();
        drop(f);
        let cache = PointCache::open(&dir).expect("torn tail must not abort the open");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.corrupt_lines(), 1);
        let back = cache.get(&key).expect("intact entry still served");
        assert_eq!(back.delivered_packets, sample().delivered_packets);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn coordinate_canonical_form_is_valid_json() {
        let mut c = coord(0.05);
        c.tech = Some("22nm");
        let text = c.canonical();
        assert!(json::parse(&text).is_ok(), "{text}");
        assert!(text.contains("\"load_bits\""));
        assert!(text.contains("\"tech\": \"22nm\""));
        assert!(
            !text.contains("shards"),
            "single-shard coordinates keep their pre-sharding form"
        );
        c.shards = 2;
        let text = c.canonical();
        assert!(json::parse(&text).is_ok(), "{text}");
        assert!(text.contains("\"shards\": 2"));
    }
}
