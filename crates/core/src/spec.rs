//! Serializable campaign specifications: the `slim_noc-spec-v1` wire
//! format.
//!
//! A [`Campaign`](crate::Campaign) built through the in-code builder
//! cannot be keyed, cached, or submitted to a server — the spec types
//! here are its value-type twin. [`CampaignSpec`] captures **every**
//! builder option (setups × patterns × loads × windows × seed ×
//! refinement × power × threads × cache) as plain data with a
//! byte-stable JSON round trip:
//!
//! - [`CampaignSpec::to_json`] / [`CampaignSpec::from_json`] define the
//!   wire format (`slim_noc-spec-v1`, golden-pinned; serialize → parse
//!   → serialize is byte-identical);
//! - [`Campaign::from_spec`](crate::Campaign::from_spec) /
//!   [`Campaign::to_spec`](crate::Campaign::to_spec) convert to and
//!   from the runnable form;
//! - [`SetupSpec::canonical_json`] is the canonical per-setup string
//!   that feeds the content-addressed point cache
//!   (see [`crate::cache`]).
//!
//! Floats are serialized in Rust's shortest-round-trip `Display` form,
//! so a spec that travels through JSON reproduces the exact same
//! `f64` bits — and therefore the exact same derived point seeds and
//! cache keys — as the original.
//!
//! Setups are specified as *recipes*: a paper-configuration name plus
//! the builder modifiers (`layout`, `buffers`, `routing`, `smart`).
//! Setups built from arbitrary topologies
//! ([`Setup::from_topology`](crate::Setup::from_topology)) have no
//! recipe and are not spec-representable.

use crate::faults::FaultsSpec;
use crate::json::{self, JsonValue};
use crate::setup::{BufferPreset, Setup, SetupError};
use crate::sweep::Campaign;
use snoc_layout::SnLayout;
use snoc_power::TechNode;
use snoc_sim::RoutingKind;
use snoc_traffic::TrafficPattern;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from spec parsing, conversion, or cache attachment.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpecError {
    /// Malformed JSON or a missing/ill-typed field.
    Parse(String),
    /// A setup recipe failed to build (unknown config name, …).
    Setup(SetupError),
    /// A campaign contains a setup with no serializable recipe.
    Unrepresentable(String),
    /// The spec's cache directory could not be opened.
    Cache(std::io::Error),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(msg) => write!(f, "spec parse: {msg}"),
            SpecError::Setup(e) => write!(f, "spec setup: {e}"),
            SpecError::Unrepresentable(name) => write!(
                f,
                "setup `{name}` was built from a custom topology and has no \
                 serializable recipe; use Setup::paper-based setups in \
                 spec-bound campaigns"
            ),
            SpecError::Cache(e) => write!(f, "spec cache: {e}"),
        }
    }
}

impl Error for SpecError {}

impl From<SetupError> for SpecError {
    fn from(e: SetupError) -> Self {
        SpecError::Setup(e)
    }
}

/// The serializable recipe of one [`Setup`]: a paper-configuration
/// name plus builder modifiers, applied in a fixed canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupSpec {
    /// Paper-configuration name ([`Setup::paper`] vocabulary).
    pub config: String,
    /// Display name (defaults to `config`; repro binaries override it
    /// to label variants, and it feeds the per-point seed derivation).
    pub name: String,
    /// Slim NoC layout override (`None` = natural layout; ignored for
    /// non-SN topologies, mirroring [`Setup::with_sn_layout`]).
    pub sn_layout: Option<SnLayout>,
    /// SMART links enabled (`H = 9` vs `H = 1`).
    pub smart: bool,
    /// Buffering preset.
    pub buffers: BufferPreset,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Fault recipe for degraded-mode runs (`None` = fault-free;
    /// resolved against the setup's topology at simulator-build time,
    /// and part of the canonical string — and therefore the cache key —
    /// only when present, keeping fault-free specs byte-stable).
    pub faults: Option<FaultsSpec>,
}

impl SetupSpec {
    /// A recipe with the §5.1 defaults for the named configuration.
    #[must_use]
    pub fn new(config: impl Into<String>) -> Self {
        let config = config.into();
        SetupSpec {
            name: config.clone(),
            config,
            sn_layout: None,
            smart: false,
            buffers: BufferPreset::EbSmall,
            routing: RoutingKind::Minimal,
            faults: None,
        }
    }

    /// Builds the runnable [`Setup`]. Modifiers apply in canonical
    /// order (layout, buffers, routing, smart, faults); the builder methods are
    /// order-independent, so any builder chain and its recipe build
    /// identical setups.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError`] for unknown configuration names.
    pub fn build(&self) -> Result<Setup, SetupError> {
        let mut setup = Setup::paper(&self.config)?;
        if let Some(layout) = self.sn_layout {
            setup = setup.with_sn_layout(layout)?;
        }
        setup = setup
            .with_buffers(self.buffers)
            .with_routing(self.routing)
            .with_smart(self.smart);
        if let Some(faults) = &self.faults {
            setup = setup.with_faults(faults.clone());
        }
        setup.name = self.name.clone();
        Ok(setup)
    }

    /// The recipe as a compact one-line JSON object — both the wire
    /// form inside [`CampaignSpec::to_json`] and the canonical string
    /// hashed into content-addressed cache keys. Field order is fixed;
    /// `layout` and `faults` are omitted when `None`, so fault-free
    /// recipes (and their cache keys) are byte-identical to pre-fault
    /// ones.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"config\": \"{}\", \"name\": \"{}\"",
            json::escape(&self.config),
            json::escape(&self.name),
        );
        if let Some(layout) = self.sn_layout {
            let _ = write!(out, ", \"layout\": \"{}\"", layout.spec_name());
        }
        let _ = write!(
            out,
            ", \"smart\": {}, \"buffers\": \"{}\", \"routing\": \"{}\"",
            self.smart,
            self.buffers.spec_name(),
            self.routing.spec_name(),
        );
        if let Some(faults) = &self.faults {
            let _ = write!(out, ", \"faults\": {}", faults.canonical_json());
        }
        out.push('}');
        out
    }

    /// Parses one setup object of the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on missing or ill-typed fields.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, SpecError> {
        let config = v
            .get("config")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| SpecError::Parse("setup missing string `config`".into()))?
            .to_string();
        let name = match v.get("name") {
            None => config.clone(),
            Some(n) => n
                .as_str()
                .ok_or_else(|| SpecError::Parse("setup `name` must be a string".into()))?
                .to_string(),
        };
        let sn_layout = match v.get("layout") {
            None | Some(JsonValue::Null) => None,
            Some(l) => {
                let raw = l
                    .as_str()
                    .ok_or_else(|| SpecError::Parse("setup `layout` must be a string".into()))?;
                Some(SnLayout::from_spec_name(raw).ok_or_else(|| {
                    SpecError::Parse(format!(
                        "unknown layout `{raw}` (basic|subgr|gr|rand:<seed>)"
                    ))
                })?)
            }
        };
        let smart = match v.get("smart") {
            None => false,
            Some(s) => s
                .as_bool()
                .ok_or_else(|| SpecError::Parse("setup `smart` must be a bool".into()))?,
        };
        let buffers = match v.get("buffers") {
            None => BufferPreset::EbSmall,
            Some(b) => {
                let raw = b
                    .as_str()
                    .ok_or_else(|| SpecError::Parse("setup `buffers` must be a string".into()))?;
                BufferPreset::from_spec_name(raw).ok_or_else(|| {
                    SpecError::Parse(format!(
                        "unknown buffers `{raw}` (eb-small|eb-large|eb-var|el-links|cbr<N>)"
                    ))
                })?
            }
        };
        let routing = match v.get("routing") {
            None => RoutingKind::Minimal,
            Some(r) => {
                let raw = r
                    .as_str()
                    .ok_or_else(|| SpecError::Parse("setup `routing` must be a string".into()))?;
                RoutingKind::from_spec_name(raw).ok_or_else(|| {
                    SpecError::Parse(format!("unknown routing `{raw}` (min|ugal-l|ugal-g|xy)"))
                })?
            }
        };
        let faults = match v.get("faults") {
            None | Some(JsonValue::Null) => None,
            Some(f) => Some(FaultsSpec::from_json_value(f).map_err(SpecError::Parse)?),
        };
        Ok(SetupSpec {
            config,
            name,
            sn_layout,
            smart,
            buffers,
            routing,
            faults,
        })
    }
}

impl Setup {
    /// The serializable recipe of this setup, or `None` when it was
    /// built from an arbitrary topology ([`Setup::from_topology`]) and
    /// has none. The recipe reflects the *current* builder state
    /// (including direct `name` overrides), so
    /// `setup.to_spec().unwrap().build()` reproduces the setup.
    #[must_use]
    pub fn to_spec(&self) -> Option<SetupSpec> {
        Some(SetupSpec {
            config: self.paper_config.clone()?,
            name: self.name.clone(),
            sn_layout: self.sn_layout,
            smart: self.sim.smart_hops > 1,
            buffers: self.buffers,
            routing: self.sim.routing,
            faults: self.faults.clone(),
        })
    }
}

/// A complete, serializable campaign description — the wire format,
/// the cache-key source, and the CLI input (`--spec file.json`).
///
/// Every [`Campaign`] builder option is representable; see the module
/// docs for the JSON schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name.
    pub name: String,
    /// Setup recipes.
    pub setups: Vec<SetupSpec>,
    /// Traffic patterns.
    pub patterns: Vec<TrafficPattern>,
    /// Injection-rate grid in flits/node/cycle.
    pub loads: Vec<f64>,
    /// Warmup cycles per point.
    pub warmup: u64,
    /// Measured cycles per point.
    pub measure: u64,
    /// Base seed for per-point seed derivation.
    pub base_seed: u64,
    /// Bisection rounds around the saturation knee.
    pub refine_rounds: usize,
    /// Stop each curve after its first saturated grid point.
    pub stop_at_saturation: bool,
    /// Worker threads (0 = one per core). Execution detail — not part
    /// of any cache key.
    pub threads: usize,
    /// Simulation-engine shards per point (1 = the monolithic engine).
    /// Part of the cache key: only minimal/XY-adaptive credited
    /// configurations are bit-identical across shard counts, so points
    /// computed under different sharding never alias in the cache.
    pub shards: usize,
    /// Power-aware mode technology node.
    pub power_tech: Option<TechNode>,
    /// Content-addressed point cache directory. Execution detail — not
    /// part of any cache key.
    pub cache_dir: Option<String>,
}

impl CampaignSpec {
    /// An empty spec with the same defaults as
    /// [`Campaign::new`](crate::Campaign::new).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            setups: Vec::new(),
            patterns: Vec::new(),
            loads: Vec::new(),
            warmup: 2_000,
            measure: 10_000,
            base_seed: 0xC0FFEE,
            refine_rounds: 0,
            stop_at_saturation: true,
            threads: 0,
            shards: 1,
            power_tech: None,
            cache_dir: None,
        }
    }

    /// Serializes as `slim_noc-spec-v1` JSON (golden-pinned; field
    /// names and order are a schema contract, and serialize → parse →
    /// serialize is byte-identical).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"slim_noc-spec-v1\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", json::escape(&self.name));
        if self.setups.is_empty() {
            out.push_str("  \"setups\": [],\n");
        } else {
            out.push_str("  \"setups\": [\n");
            for (i, s) in self.setups.iter().enumerate() {
                let sep = if i + 1 < self.setups.len() { "," } else { "" };
                let _ = writeln!(out, "    {}{sep}", s.canonical_json());
            }
            out.push_str("  ],\n");
        }
        let patterns = self
            .patterns
            .iter()
            .map(|p| format!("\"{}\"", p.short_name()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  \"patterns\": [{patterns}],");
        let loads = self
            .loads
            .iter()
            .map(|l| format_load(*l))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  \"loads\": [{loads}],");
        let _ = writeln!(out, "  \"warmup\": {},", self.warmup);
        let _ = writeln!(out, "  \"measure\": {},", self.measure);
        let _ = writeln!(out, "  \"base_seed\": {},", self.base_seed);
        let _ = writeln!(out, "  \"refine_rounds\": {},", self.refine_rounds);
        let _ = writeln!(
            out,
            "  \"stop_at_saturation\": {},",
            self.stop_at_saturation
        );
        let _ = write!(out, "  \"threads\": {}", self.threads);
        if self.shards != 1 {
            // Emitted only when sharded, keeping pre-shards specs (and
            // the golden file) byte-stable.
            let _ = write!(out, ",\n  \"shards\": {}", self.shards);
        }
        if let Some(tech) = self.power_tech {
            let _ = write!(out, ",\n  \"tech\": \"{tech}\"");
        }
        if let Some(dir) = &self.cache_dir {
            let _ = write!(out, ",\n  \"cache_dir\": \"{}\"", json::escape(dir));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses the wire format. `schema`, `name`, `setups`, `patterns`,
    /// and `loads` are required; everything else falls back to the
    /// [`CampaignSpec::new`] defaults so hand-written specs stay short.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON, an unknown
    /// schema, missing required fields, or invalid values (non-finite
    /// or non-positive loads, unknown pattern/layout/buffer/routing
    /// names).
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let root = json::parse(text).map_err(SpecError::Parse)?;
        let schema = root
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| SpecError::Parse("missing string `schema`".into()))?;
        if schema != "slim_noc-spec-v1" {
            return Err(SpecError::Parse(format!(
                "unsupported schema `{schema}` (expected slim_noc-spec-v1)"
            )));
        }
        let name = root
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| SpecError::Parse("missing string `name`".into()))?
            .to_string();
        let setups = root
            .get("setups")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| SpecError::Parse("missing array `setups`".into()))?
            .iter()
            .map(SetupSpec::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let patterns = root
            .get("patterns")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| SpecError::Parse("missing array `patterns`".into()))?
            .iter()
            .map(|p| {
                let raw = p
                    .as_str()
                    .ok_or_else(|| SpecError::Parse("patterns must be strings".into()))?;
                TrafficPattern::from_short_name(raw).ok_or_else(|| {
                    SpecError::Parse(format!(
                        "unknown pattern `{raw}` (RND|SHF|REV|ADV1|ADV2|ASYM|TRN)"
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let loads = root
            .get("loads")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| SpecError::Parse("missing array `loads`".into()))?
            .iter()
            .map(|l| {
                let x = l
                    .as_f64()
                    .ok_or_else(|| SpecError::Parse("loads must be numbers".into()))?;
                if x.is_finite() && x > 0.0 {
                    Ok(x)
                } else {
                    Err(SpecError::Parse(format!(
                        "load {x} must be finite and positive"
                    )))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let defaults = CampaignSpec::new("");
        let u64_field = |field: &str, default: u64| -> Result<u64, SpecError> {
            match root.get(field) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| SpecError::Parse(format!("`{field}` must be a u64"))),
            }
        };
        let warmup = u64_field("warmup", defaults.warmup)?;
        let measure = u64_field("measure", defaults.measure)?;
        let base_seed = u64_field("base_seed", defaults.base_seed)?;
        let refine_rounds = match root.get("refine_rounds") {
            None => defaults.refine_rounds,
            Some(v) => v
                .as_usize()
                .ok_or_else(|| SpecError::Parse("`refine_rounds` must be a usize".into()))?,
        };
        let stop_at_saturation = match root.get("stop_at_saturation") {
            None => defaults.stop_at_saturation,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SpecError::Parse("`stop_at_saturation` must be a bool".into()))?,
        };
        let threads = match root.get("threads") {
            None => defaults.threads,
            Some(v) => v
                .as_usize()
                .ok_or_else(|| SpecError::Parse("`threads` must be a usize".into()))?,
        };
        let shards = match root.get("shards") {
            None => defaults.shards,
            Some(v) => {
                let n = v
                    .as_usize()
                    .ok_or_else(|| SpecError::Parse("`shards` must be a usize".into()))?;
                if n == 0 {
                    return Err(SpecError::Parse("`shards` must be at least 1".into()));
                }
                n
            }
        };
        let power_tech = match root.get("tech") {
            None | Some(JsonValue::Null) => None,
            Some(v) => {
                let raw = v
                    .as_str()
                    .ok_or_else(|| SpecError::Parse("`tech` must be a string".into()))?;
                Some(TechNode::from_name(raw).ok_or_else(|| {
                    SpecError::Parse(format!("unknown tech `{raw}` (45nm|22nm|11nm)"))
                })?)
            }
        };
        let cache_dir = match root.get("cache_dir") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| SpecError::Parse("`cache_dir` must be a string".into()))?
                    .to_string(),
            ),
        };
        Ok(CampaignSpec {
            name,
            setups,
            patterns,
            loads,
            warmup,
            measure,
            base_seed,
            refine_rounds,
            stop_at_saturation,
            threads,
            shards,
            power_tech,
            cache_dir,
        })
    }
}

/// A load value in shortest-round-trip form: Rust's `f64` `Display`
/// prints the shortest decimal that parses back to the identical bits,
/// so specs reproduce exact seeds and cache keys after a JSON trip.
fn format_load(x: f64) -> String {
    debug_assert!(x.is_finite(), "loads are validated finite");
    format!("{x}")
}

impl Campaign {
    /// Builds the runnable campaign a spec describes, including its
    /// point cache when `cache_dir` is set.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a setup recipe fails to build or the
    /// cache directory cannot be opened.
    pub fn from_spec(spec: &CampaignSpec) -> Result<Campaign, SpecError> {
        let setups = spec
            .setups
            .iter()
            .map(SetupSpec::build)
            .collect::<Result<Vec<_>, _>>()?;
        let mut campaign = Campaign::new(spec.name.clone())
            .with_setups(setups)
            .with_patterns(spec.patterns.clone())
            .with_loads(spec.loads.clone())
            .with_windows(spec.warmup, spec.measure)
            .with_seed(spec.base_seed)
            .with_refinement(spec.refine_rounds)
            .with_stop_at_saturation(spec.stop_at_saturation)
            .with_threads(spec.threads)
            .with_shards(spec.shards);
        if let Some(tech) = spec.power_tech {
            campaign = campaign.with_power(tech);
        }
        if let Some(dir) = &spec.cache_dir {
            campaign = campaign.with_cache_dir(dir).map_err(SpecError::Cache)?;
        }
        Ok(campaign)
    }

    /// The serializable spec of this campaign.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Unrepresentable`] when any setup was built
    /// from a custom topology (no recipe).
    pub fn to_spec(&self) -> Result<CampaignSpec, SpecError> {
        let setups = self
            .setups
            .iter()
            .map(|s| {
                s.to_spec()
                    .ok_or_else(|| SpecError::Unrepresentable(s.name.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignSpec {
            name: self.name.clone(),
            setups,
            patterns: self.patterns.clone(),
            loads: self.loads.clone(),
            warmup: self.warmup,
            measure: self.measure,
            base_seed: self.base_seed,
            refine_rounds: self.refine_rounds,
            stop_at_saturation: self.stop_at_saturation,
            threads: self.threads,
            shards: self.shards,
            power_tech: self.power_tech,
            cache_dir: self.cache().map(|c| c.dir().display().to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::StormSpec;

    fn full_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("unit \"spec\"");
        spec.setups = vec![
            {
                let mut s = SetupSpec::new("sn54");
                s.faults = Some(FaultsSpec {
                    events: Vec::new(),
                    storm: Some(StormSpec {
                        links: 3,
                        start: 200,
                        window: 400,
                        seed: 11,
                    }),
                });
                s
            },
            {
                let mut s = SetupSpec::new("sn_s");
                s.name = "sn_s+smart".into();
                s.sn_layout = Some(SnLayout::Random(7));
                s.smart = true;
                s.buffers = BufferPreset::Cbr(20);
                s.routing = RoutingKind::UgalG;
                s
            },
        ];
        spec.patterns = vec![TrafficPattern::Random, TrafficPattern::Adversarial1];
        spec.loads = vec![0.008, 0.1, 1.0 / 3.0];
        spec.warmup = 123;
        spec.measure = 456;
        spec.base_seed = u64::MAX - 3;
        spec.refine_rounds = 2;
        spec.stop_at_saturation = false;
        spec.threads = 3;
        spec.shards = 4;
        spec.power_tech = Some(TechNode::N22);
        spec.cache_dir = Some("/tmp/cache dir".into());
        spec
    }

    #[test]
    fn json_round_trip_is_byte_stable_and_lossless() {
        let spec = full_spec();
        let json1 = spec.to_json();
        let parsed = CampaignSpec::from_json(&json1).expect("parse own output");
        assert_eq!(parsed, spec, "value round trip");
        assert_eq!(parsed.to_json(), json1, "byte round trip");
    }

    #[test]
    fn defaults_fill_omitted_fields() {
        let spec = CampaignSpec::from_json(
            r#"{"schema": "slim_noc-spec-v1", "name": "mini",
                "setups": [{"config": "sn54"}],
                "patterns": ["RND"], "loads": [0.05]}"#,
        )
        .expect("minimal spec");
        let defaults = CampaignSpec::new("mini");
        assert_eq!(spec.warmup, defaults.warmup);
        assert_eq!(spec.measure, defaults.measure);
        assert_eq!(spec.base_seed, defaults.base_seed);
        assert!(spec.stop_at_saturation);
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.power_tech, None);
        assert_eq!(spec.setups[0].name, "sn54", "name defaults to config");
        assert_eq!(spec.setups[0].buffers, BufferPreset::EbSmall);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let cases = [
            ("not json", "json"),
            (
                r#"{"schema": "slim_noc-spec-v2", "name": "x", "setups": [], "patterns": [], "loads": []}"#,
                "schema",
            ),
            (
                r#"{"schema": "slim_noc-spec-v1", "setups": [], "patterns": [], "loads": []}"#,
                "name",
            ),
            (
                r#"{"schema": "slim_noc-spec-v1", "name": "x", "setups": [], "patterns": ["HOT"], "loads": []}"#,
                "pattern",
            ),
            (
                r#"{"schema": "slim_noc-spec-v1", "name": "x", "setups": [], "patterns": [], "loads": [-0.1]}"#,
                "load",
            ),
            (
                r#"{"schema": "slim_noc-spec-v1", "name": "x", "setups": [{"config": "sn54", "routing": "warp"}], "patterns": [], "loads": []}"#,
                "routing",
            ),
            (
                r#"{"schema": "slim_noc-spec-v1", "name": "x", "setups": [], "patterns": [], "loads": [], "shards": 0}"#,
                "shards",
            ),
        ];
        for (text, what) in cases {
            assert!(
                CampaignSpec::from_json(text).is_err(),
                "accepted bad {what}: {text}"
            );
        }
    }

    #[test]
    fn fault_recipe_changes_canonical_string_only_when_present() {
        let plain = SetupSpec::new("sn54");
        assert!(
            !plain.canonical_json().contains("faults"),
            "fault-free recipes keep the pre-fault wire format byte-identical"
        );
        let faulted = &full_spec().setups[0];
        assert_ne!(
            faulted.canonical_json(),
            plain.canonical_json(),
            "fault recipe must be part of the canonical string (and cache key)"
        );
        // An explicitly-null faults field parses the same as an absent one.
        let nulled = SetupSpec::from_json_value(
            &crate::json::parse(r#"{"config": "sn54", "faults": null}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(nulled, plain);
        // An empty recipe is rejected rather than silently treated as none.
        assert!(SetupSpec::from_json_value(
            &crate::json::parse(r#"{"config": "sn54", "faults": {}}"#).unwrap(),
        )
        .is_err());
    }

    #[test]
    fn setup_recipe_round_trips_through_build() {
        for spec in full_spec().setups {
            let built = spec.build().expect("recipe builds");
            let back = built.to_spec().expect("paper setups have recipes");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn built_setup_matches_builder_chain() {
        // A recipe must reproduce the exact setup of the equivalent
        // builder chain, regardless of the order modifiers were
        // applied in.
        let chain = Setup::paper("sn_s")
            .unwrap()
            .with_smart(true)
            .with_routing(RoutingKind::UgalL)
            .with_buffers(BufferPreset::Cbr(20));
        let rebuilt = chain.to_spec().expect("recipe").build().expect("builds");
        assert_eq!(format!("{chain:?}"), format!("{rebuilt:?}"));
    }

    #[test]
    fn custom_topologies_are_unrepresentable() {
        let topo = snoc_topology::Topology::mesh(4, 4, 1);
        let setup = Setup::from_topology("custom", topo, 0.5).unwrap();
        assert!(setup.to_spec().is_none());
        let campaign = Campaign::new("c").with_setups(vec![setup]);
        assert!(matches!(
            campaign.to_spec(),
            Err(SpecError::Unrepresentable(_))
        ));
    }

    #[test]
    fn campaign_round_trips_through_spec() {
        let spec = {
            let mut s = full_spec();
            s.cache_dir = None; // no filesystem in this test
            s
        };
        let campaign = Campaign::from_spec(&spec).expect("buildable");
        assert_eq!(campaign.to_spec().expect("representable"), spec);
    }

    #[test]
    fn loads_keep_exact_bits_through_json() {
        let mut spec = CampaignSpec::new("bits");
        spec.loads = vec![0.1, 1.0 / 3.0, 0.30000000000000004, 5e-324_f64.max(0.007)];
        let parsed = CampaignSpec::from_json(&spec.to_json()).unwrap();
        for (a, b) in spec.loads.iter().zip(&parsed.loads) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} lost bits");
        }
    }
}
