//! Sweep-campaign engine: declarative topology × traffic × load grids.
//!
//! The paper's figures are families of latency–throughput curves —
//! dozens of independent simulations each. A [`Campaign`] describes one
//! such family declaratively (which [`Setup`]s, which
//! [`TrafficPattern`]s, which injection-rate grid, which simulation
//! windows) and [`Campaign::run`] fans the curves out over worker
//! threads, giving every simulated point a seed derived from the spec
//! alone. Results are therefore **bit-identical for every thread
//! count** and can be re-derived point-by-point.
//!
//! Around the saturation knee the fixed grid is coarse; optional
//! adaptive refinement bisects the interval between the last
//! unsaturated and the first saturated load, sharpening the measured
//! knee without wasting simulations deep inside either regime.
//!
//! Results come back as a flat, structured [`CampaignResult`] that can
//! be rendered as figure tables ([`CampaignResult::series`]) or emitted
//! as machine-readable JSON ([`CampaignResult::to_json`]).
//!
//! # Example
//!
//! ```
//! use snoc_core::{Campaign, Setup};
//! use snoc_traffic::TrafficPattern;
//!
//! let campaign = Campaign::new("demo")
//!     .with_setups(vec![Setup::paper("sn54")?])
//!     .with_patterns(vec![TrafficPattern::Random])
//!     .with_loads(vec![0.02, 0.05])
//!     .with_windows(200, 800);
//! let result = campaign.run();
//! assert_eq!(result.points.len(), 2);
//! assert!(result.to_json().contains("\"schema\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cache::{CachedPoint, PointCache, PointCoord};
use crate::parallel::parallel_map_with_threads;
use crate::report::{format_float, Series};
use crate::setup::Setup;
use snoc_power::TechNode;
use snoc_sim::saturation_heuristic;
use snoc_traffic::TrafficPattern;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A declarative sweep specification: every combination of setup ×
/// pattern is one latency–load curve, swept over `loads` (plus optional
/// knee refinement).
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (recorded in the JSON output).
    pub name: String,
    /// Experiment configurations (one curve per setup per pattern).
    pub setups: Vec<Setup>,
    /// Traffic patterns.
    pub patterns: Vec<TrafficPattern>,
    /// Injection-rate grid in flits/node/cycle.
    pub loads: Vec<f64>,
    /// Warmup cycles per point.
    pub warmup: u64,
    /// Measured cycles per point.
    pub measure: u64,
    /// Base seed; per-point seeds are derived from it and the point's
    /// coordinates (never from execution order).
    pub base_seed: u64,
    /// Bisection rounds around the saturation knee (0 disables
    /// refinement).
    pub refine_rounds: usize,
    /// Stop a curve after its first saturated grid point (as the
    /// paper's figures do).
    pub stop_at_saturation: bool,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Simulation-engine shards per point (1 = monolithic engine; see
    /// [`snoc_sim::ShardedSimulator`] for the determinism contract).
    pub shards: usize,
    /// Power-aware campaign mode: evaluate the power/area model at this
    /// technology node for every point, feeding it the activity factors
    /// the simulation *measured*. Points then carry
    /// [`SweepPoint::power`] columns and [`CampaignResult::to_json`]
    /// emits the `slim_noc-sweep-v2` schema (a superset of v1).
    pub power_tech: Option<TechNode>,
    /// Content-addressed point cache ([`Campaign::with_cache_dir`]).
    /// Shared (`Arc`) so concurrent campaigns — e.g. server clients —
    /// reuse each other's warm points.
    cache: Option<Arc<PointCache>>,
}

impl Campaign {
    /// Creates an empty campaign with the paper's default windows
    /// (2 000 warmup / 10 000 measured cycles).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            setups: Vec::new(),
            patterns: Vec::new(),
            loads: Vec::new(),
            warmup: 2_000,
            measure: 10_000,
            base_seed: 0xC0FFEE,
            refine_rounds: 0,
            stop_at_saturation: true,
            threads: 0,
            shards: 1,
            power_tech: None,
            cache: None,
        }
    }

    /// Sets the experiment setups.
    #[must_use]
    pub fn with_setups(mut self, setups: Vec<Setup>) -> Self {
        self.setups = setups;
        self
    }

    /// Sets the traffic patterns.
    #[must_use]
    pub fn with_patterns(mut self, patterns: Vec<TrafficPattern>) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sets the injection-rate grid.
    #[must_use]
    pub fn with_loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = loads;
        self
    }

    /// Sets warmup and measurement windows in cycles.
    #[must_use]
    pub fn with_windows(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Enables adaptive knee refinement with the given bisection rounds.
    #[must_use]
    pub fn with_refinement(mut self, rounds: usize) -> Self {
        self.refine_rounds = rounds;
        self
    }

    /// Sets the worker thread count (0 = one per core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of simulation-engine shards each point runs on
    /// (clamped to at least 1). Sharding pays off for large instances;
    /// small campaign points are usually faster monolithic.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enables power-aware mode: every point additionally runs the
    /// power/area model at `tech`, driven by measured activity.
    #[must_use]
    pub fn with_power(mut self, tech: TechNode) -> Self {
        self.power_tech = Some(tech);
        self
    }

    /// Attaches a shared content-addressed point cache: points whose
    /// coordinate (setup recipe × pattern × load bits × windows × base
    /// seed × tech) is already stored are reconstructed instead of
    /// simulated, bit-identically to a cold run. Setups without a
    /// serializable recipe ([`Setup::from_topology`]) always simulate.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PointCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Opens (creating if needed) a [`PointCache`] at `dir` and
    /// attaches it; see [`Campaign::with_cache`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from [`PointCache::open`].
    pub fn with_cache_dir(self, dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(self.with_cache(Arc::new(PointCache::open(dir)?)))
    }

    /// The attached point cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<PointCache>> {
        self.cache.as_ref()
    }

    /// Controls whether curves stop after their first saturated grid
    /// point (the figure convention; on by default). Power campaigns
    /// comparing networks *at matched load* disable this so every
    /// setup is evaluated over the full grid.
    #[must_use]
    pub fn with_stop_at_saturation(mut self, stop: bool) -> Self {
        self.stop_at_saturation = stop;
        self
    }

    /// The deterministic seed of one simulated point. Derived only from
    /// the base seed and the point's coordinates, so any point can be
    /// re-run in isolation and any execution order yields the same
    /// simulation.
    #[must_use]
    pub fn point_seed(&self, setup: &str, pattern: TrafficPattern, load: f64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.base_seed;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(setup.as_bytes());
        eat(pattern.short_name().as_bytes());
        eat(&load.to_bits().to_le_bytes());
        // splitmix64 finalizer for avalanche.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// Runs the campaign: one parallel task per (setup, pattern) curve.
    /// Output ordering and every simulated number are independent of
    /// the thread count.
    ///
    /// # Panics
    ///
    /// Panics if two setups share a name: names identify curves in the
    /// result and feed the per-point seeds, so a duplicate would
    /// silently interleave two curves into one. Give variants distinct
    /// names (`setup.name = "sn_s+smart".into()`) before adding them.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        self.run_observed(|_| {})
    }

    /// Runs the campaign, invoking `observe` on every finished point
    /// (from worker threads, in completion order — *not* result order).
    /// The campaign server streams progress through this; [`run`] is
    /// this with a no-op observer.
    ///
    /// # Panics
    ///
    /// Panics on duplicate setup names; see [`Campaign::run`].
    ///
    /// [`run`]: Campaign::run
    #[must_use]
    pub fn run_observed<F: Fn(&SweepPoint) + Sync>(&self, observe: F) -> CampaignResult {
        for (i, a) in self.setups.iter().enumerate() {
            assert!(
                !self.setups[..i].iter().any(|b| b.name == a.name),
                "campaign `{}`: duplicate setup name `{}` — curves are keyed \
                 by name; rename one variant before running",
                self.name,
                a.name
            );
        }
        let pairs: Vec<(usize, usize)> = (0..self.setups.len())
            .flat_map(|s| (0..self.patterns.len()).map(move |p| (s, p)))
            .collect();
        let curves = parallel_map_with_threads(pairs, self.threads, |(s, p)| {
            self.run_curve(&self.setups[s], self.patterns[p], &observe)
        });
        let mut points = Vec::new();
        let (mut cache_hits, mut cache_misses) = (0, 0);
        for (curve, hits, misses) in curves {
            points.extend(curve);
            cache_hits += hits;
            cache_misses += misses;
        }
        CampaignResult {
            name: self.name.clone(),
            setups: self.setups.iter().map(|s| s.name.clone()).collect(),
            patterns: self
                .patterns
                .iter()
                .map(|p| p.short_name().to_string())
                .collect(),
            warmup: self.warmup,
            measure: self.measure,
            base_seed: self.base_seed,
            tech: self.power_tech,
            cache_hits,
            cache_misses,
            points,
        }
    }

    /// Runs one latency–load curve (grid sweep + knee refinement);
    /// returns the points plus this curve's cache hit/miss counts.
    fn run_curve<F: Fn(&SweepPoint) + Sync>(
        &self,
        setup: &Setup,
        pattern: TrafficPattern,
        observe: &F,
    ) -> (Vec<SweepPoint>, u64, u64) {
        let mut points = Vec::new();
        let mut zero_load = 0.0;
        let (mut hits, mut misses) = (0, 0);
        let mut last_ok: Option<f64> = None;
        let mut first_sat: Option<f64> = None;
        for &load in &self.loads {
            let point = self.run_point(
                setup,
                pattern,
                load,
                &mut zero_load,
                false,
                &mut hits,
                &mut misses,
            );
            observe(&point);
            let saturated = point.saturated;
            points.push(point);
            if saturated {
                first_sat = Some(load);
                if self.stop_at_saturation {
                    break;
                }
            } else if first_sat.is_none() {
                last_ok = Some(load);
            }
        }
        // Adaptive refinement: bisect the knee bracket. Each round
        // halves the interval between the highest load known to be
        // below saturation and the lowest known saturated load.
        if let (Some(mut lo), Some(mut hi)) = (last_ok, first_sat) {
            for _ in 0..self.refine_rounds {
                let mid = 0.5 * (lo + hi);
                let point = self.run_point(
                    setup,
                    pattern,
                    mid,
                    &mut zero_load,
                    true,
                    &mut hits,
                    &mut misses,
                );
                observe(&point);
                if point.saturated {
                    hi = mid;
                } else {
                    lo = mid;
                }
                points.push(point);
            }
        }
        points.sort_by(|a, b| a.load.total_cmp(&b.load));
        (points, hits, misses)
    }

    /// The cache key of one point, when the campaign has a cache and
    /// the setup has a serializable recipe.
    fn cache_key(&self, setup: &Setup, pattern: TrafficPattern, load: f64) -> Option<String> {
        let cache = self.cache.as_ref()?;
        let setup_spec = setup.to_spec()?.canonical_json();
        let tech = self.power_tech.map(|t| t.to_string());
        Some(cache.key(&PointCoord {
            setup_spec: &setup_spec,
            pattern: pattern.short_name(),
            load,
            warmup: self.warmup,
            measure: self.measure,
            base_seed: self.base_seed,
            shards: self.shards,
            tech: tech.as_deref(),
        }))
    }

    /// Runs (or replays from cache) one point. `zero_load` is the
    /// curve's reference latency for saturation detection, set by the
    /// curve's first point — cached points reproduce it bit-exactly, so
    /// warm and cold curves agree on every derived flag.
    #[allow(clippy::too_many_arguments)] // internal; counters travel with the curve
    fn run_point(
        &self,
        setup: &Setup,
        pattern: TrafficPattern,
        load: f64,
        zero_load: &mut f64,
        refined: bool,
        hits: &mut u64,
        misses: &mut u64,
    ) -> SweepPoint {
        let seed = self.point_seed(&setup.name, pattern, load);
        let key = self.cache_key(setup, pattern, load);
        if let Some(key) = &key {
            let cache = self.cache.as_ref().expect("key implies cache");
            if let Some(hit) = cache.get(key) {
                *hits += 1;
                if *zero_load == 0.0 {
                    *zero_load = hit.latency;
                }
                return SweepPoint {
                    setup: setup.name.clone(),
                    pattern: pattern.short_name().to_string(),
                    load,
                    seed,
                    latency: hit.latency,
                    p99_latency: hit.p99_latency,
                    throughput: hit.throughput,
                    avg_hops: hit.avg_hops,
                    acceptance: hit.acceptance,
                    delivered_packets: hit.delivered_packets,
                    dropped_packets: hit.dropped_packets,
                    saturated: saturation_heuristic(
                        hit.latency,
                        hit.acceptance,
                        hit.drained,
                        hit.delivered_packets,
                        hit.injected_packets,
                        *zero_load,
                    ),
                    drained: hit.drained,
                    refined,
                    power: hit.power,
                };
            }
        }
        let seeded = setup.clone().with_seed(seed);
        let report = seeded.run_load_sharded(pattern, load, self.warmup, self.measure, self.shards);
        if *zero_load == 0.0 {
            *zero_load = report.avg_packet_latency();
        }
        let power = self
            .power_tech
            .map(|tech| PowerPoint::from_report(&seeded.power_report(tech, &report)));
        if let Some(key) = &key {
            *misses += 1;
            let cache = self.cache.as_ref().expect("key implies cache");
            // A failed append only loses future reuse, never this run.
            let _ = cache.put(
                key,
                &CachedPoint {
                    latency: report.avg_packet_latency(),
                    p99_latency: report.latency_percentile(0.99),
                    throughput: report.throughput(),
                    avg_hops: report.avg_hops(),
                    acceptance: report.acceptance(),
                    delivered_packets: report.delivered_packets,
                    dropped_packets: report.dropped_packets,
                    injected_packets: report.injected_packets,
                    drained: report.drained,
                    power,
                },
            );
        }
        SweepPoint {
            setup: setup.name.clone(),
            pattern: pattern.short_name().to_string(),
            load,
            seed,
            latency: report.avg_packet_latency(),
            p99_latency: report.latency_percentile(0.99),
            throughput: report.throughput(),
            avg_hops: report.avg_hops(),
            acceptance: report.acceptance(),
            delivered_packets: report.delivered_packets,
            dropped_packets: report.dropped_packets,
            saturated: report.is_saturated(*zero_load),
            drained: report.drained,
            refined,
            power,
        }
    }
}

/// Power/area columns of one power-aware sweep point, condensed from a
/// [`snoc_power::PowerReport`] driven by measured activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPoint {
    /// Total (static + dynamic) power in watts.
    pub power_w: f64,
    /// Static (leakage) power in watts.
    pub static_w: f64,
    /// Dynamic power in watts.
    pub dynamic_w: f64,
    /// Total network area in mm².
    pub area_mm2: f64,
    /// Delivered throughput per watt in flits/J (Table 5's metric).
    pub throughput_per_watt: f64,
    /// Network energy per delivered flit in joules.
    pub energy_per_flit_j: f64,
    /// Energy–delay product in J·s.
    pub edp_js: f64,
}

impl PowerPoint {
    /// Condenses a full power report into the sweep columns.
    #[must_use]
    pub fn from_report(r: &snoc_power::PowerReport) -> Self {
        PowerPoint {
            power_w: r.total_power_w(),
            static_w: r.static_power.total_w(),
            dynamic_w: r.dynamic_power.total_w(),
            area_mm2: r.area.total_mm2(),
            throughput_per_watt: r.throughput_per_power(),
            energy_per_flit_j: r.energy_per_flit(),
            edp_js: r.energy_delay(),
        }
    }
}

/// One simulated point of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Setup name.
    pub setup: String,
    /// Traffic pattern short name (`RND`, `ADV1`, …).
    pub pattern: String,
    /// Offered load in flits/node/cycle.
    pub load: f64,
    /// The derived per-point RNG seed (for exact reruns).
    pub seed: u64,
    /// Average packet latency in cycles.
    pub latency: f64,
    /// 99th-percentile packet latency in cycles.
    pub p99_latency: u64,
    /// Accepted throughput in flits/node/cycle.
    pub throughput: f64,
    /// Average network hops per packet.
    pub avg_hops: f64,
    /// Fraction of offered packets accepted into injection queues.
    pub acceptance: f64,
    /// Measured packets delivered.
    pub delivered_packets: u64,
    /// Packets dropped by live fault injection (`0` — and absent from
    /// the JSON line — on fault-free setups).
    pub dropped_packets: u64,
    /// Whether the point is past the saturation knee.
    pub saturated: bool,
    /// Whether the network fully drained.
    pub drained: bool,
    /// `true` for points added by adaptive knee refinement (as opposed
    /// to the base grid).
    pub refined: bool,
    /// Power/area columns (power-aware campaigns only).
    pub power: Option<PowerPoint>,
}

impl SweepPoint {
    /// The point as one compact JSON object — exactly the form embedded
    /// in [`CampaignResult::to_json`] point lines, and the form the
    /// campaign server streams per finished point.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"setup\": \"{}\", \"pattern\": \"{}\", \"load\": {}, \"seed\": {}, \
             \"latency\": {}, \"p99_latency\": {}, \"throughput\": {}, \"avg_hops\": {}, \
             \"acceptance\": {}, \"delivered_packets\": {}, \"saturated\": {}, \
             \"drained\": {}, \"refined\": {}",
            escape_json(&self.setup),
            escape_json(&self.pattern),
            json_f64(self.load),
            self.seed,
            json_f64(self.latency),
            self.p99_latency,
            json_f64(self.throughput),
            json_f64(self.avg_hops),
            json_f64(self.acceptance),
            self.delivered_packets,
            self.saturated,
            self.drained,
            self.refined,
        );
        if self.dropped_packets > 0 {
            let _ = write!(out, ", \"dropped_packets\": {}", self.dropped_packets);
        }
        if let Some(pw) = &self.power {
            let _ = write!(
                out,
                ", \"power_w\": {}, \"static_w\": {}, \"dynamic_w\": {}, \
                 \"area_mm2\": {}, \"throughput_per_watt\": {}, \
                 \"energy_per_flit_j\": {}, \"edp_js\": {}",
                json_f64(pw.power_w),
                json_f64(pw.static_w),
                json_f64(pw.dynamic_w),
                json_f64(pw.area_mm2),
                json_f64(pw.throughput_per_watt),
                json_f64(pw.energy_per_flit_j),
                json_f64(pw.edp_js),
            );
        }
        out.push('}');
        out
    }
}

/// The structured result of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Campaign name.
    pub name: String,
    /// Setup names, in spec order.
    pub setups: Vec<String>,
    /// Pattern short names, in spec order.
    pub patterns: Vec<String>,
    /// Warmup cycles per point.
    pub warmup: u64,
    /// Measured cycles per point.
    pub measure: u64,
    /// The campaign's base seed.
    pub base_seed: u64,
    /// The technology node of power-aware campaigns (`None` for plain
    /// latency sweeps; selects the v1 vs v2 JSON schema).
    pub tech: Option<TechNode>,
    /// Points of this run served from the content-addressed cache.
    /// Zero when no cache is attached. Deliberately *excluded* from
    /// [`CampaignResult::to_json`]: warm and cold runs of the same spec
    /// must serialize byte-identically.
    pub cache_hits: u64,
    /// Points of this run actually simulated while a cache was
    /// attached (and stored for future reuse). Zero when no cache is
    /// attached. Excluded from the JSON like [`cache_hits`].
    ///
    /// [`cache_hits`]: CampaignResult::cache_hits
    pub cache_misses: u64,
    /// All simulated points, grouped by curve, sorted by load within
    /// each curve.
    pub points: Vec<SweepPoint>,
}

impl CampaignResult {
    /// The points of one (setup, pattern) curve, in load order.
    pub fn curve<'a>(
        &'a self,
        setup: &'a str,
        pattern: &'a str,
    ) -> impl Iterator<Item = &'a SweepPoint> + 'a {
        self.points
            .iter()
            .filter(move |p| p.setup == setup && p.pattern == pattern)
    }

    /// Latency-vs-load series for one pattern, one per setup in spec
    /// order, truncated at saturation (figure convention: "we omit
    /// performance data for points after network saturation").
    #[must_use]
    pub fn series(&self, pattern: &str) -> Vec<Series> {
        self.setups
            .iter()
            .map(|name| {
                let mut s = Series::new(name.clone());
                for p in self.curve(name, pattern) {
                    if p.saturated {
                        break;
                    }
                    s.push(p.load, p.latency);
                }
                s
            })
            .collect()
    }

    /// The measured saturation-knee estimate for one curve: the highest
    /// unsaturated load bracketed by a saturated one. `None` when the
    /// curve never saturated.
    #[must_use]
    pub fn knee(&self, setup: &str, pattern: &str) -> Option<f64> {
        let first_sat = self
            .curve(setup, pattern)
            .find(|p| p.saturated)
            .map(|p| p.load)?;
        self.curve(setup, pattern)
            .filter(|p| !p.saturated && p.load < first_sat)
            .map(|p| p.load)
            .reduce(f64::max)
    }

    /// Serializes the full result as JSON; hand-rolled, the build is
    /// offline and has no serde.
    ///
    /// Plain latency campaigns emit schema `slim_noc-sweep-v1`.
    /// Power-aware campaigns ([`Campaign::with_power`]) emit
    /// `slim_noc-sweep-v2`, a strict superset: every v1 field keeps its
    /// name, order, and units, and each point gains trailing power/area
    /// columns (`power_w`, `static_w`, `dynamic_w`, `area_mm2`,
    /// `throughput_per_watt` in flits/J, `energy_per_flit_j`, `edp_js`)
    /// plus a top-level `tech` entry. v1 consumers that index by field
    /// name parse v2 unchanged.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let schema = if self.tech.is_some() {
            "slim_noc-sweep-v2"
        } else {
            "slim_noc-sweep-v1"
        };
        let _ = writeln!(out, "  \"schema\": \"{schema}\",");
        let _ = writeln!(out, "  \"campaign\": \"{}\",", escape_json(&self.name));
        let list = |names: &[String]| {
            names
                .iter()
                .map(|n| format!("\"{}\"", escape_json(n)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "  \"setups\": [{}],", list(&self.setups));
        let _ = writeln!(out, "  \"patterns\": [{}],", list(&self.patterns));
        let _ = writeln!(out, "  \"warmup\": {},", self.warmup);
        let _ = writeln!(out, "  \"measure\": {},", self.measure);
        let _ = writeln!(out, "  \"base_seed\": {},", self.base_seed);
        if let Some(tech) = self.tech {
            let _ = writeln!(out, "  \"tech\": \"{tech}\",");
        }
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(out, "    {}", p.to_json_line());
            out.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A float formatted as a valid JSON number (no NaN/inf; those become
/// null, which downstream tooling treats as missing).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format_float(x, 6)
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign::new("unit")
            .with_setups(vec![Setup::paper("sn54").expect("paper config")])
            .with_patterns(vec![TrafficPattern::Random])
            .with_loads(vec![0.02, 0.05])
            .with_windows(150, 500)
    }

    #[test]
    fn seeds_depend_on_every_coordinate() {
        let c = tiny_campaign();
        let base = c.point_seed("sn54", TrafficPattern::Random, 0.02);
        assert_ne!(base, c.point_seed("sn54", TrafficPattern::Random, 0.05));
        assert_ne!(base, c.point_seed("sn_s", TrafficPattern::Random, 0.02));
        assert_ne!(
            base,
            c.point_seed("sn54", TrafficPattern::Adversarial1, 0.02)
        );
        assert_ne!(
            base,
            c.clone()
                .with_seed(1)
                .point_seed("sn54", TrafficPattern::Random, 0.02)
        );
        // And stable: the same coordinates always hash identically.
        assert_eq!(base, c.point_seed("sn54", TrafficPattern::Random, 0.02));
    }

    #[test]
    fn run_produces_grid_points_in_order() {
        let r = tiny_campaign().run();
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.points[0].load, 0.02);
        assert_eq!(r.points[1].load, 0.05);
        assert!(r.points.iter().all(|p| p.delivered_packets > 0));
        assert!(r.points.iter().all(|p| !p.refined));
    }

    #[test]
    fn series_truncates_at_saturation() {
        let mut r = tiny_campaign().run();
        // Forge a saturated tail point.
        let mut sat = r.points[1].clone();
        sat.load = 0.9;
        sat.saturated = true;
        r.points.push(sat);
        let series = r.series("RND");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points.len(), 2, "saturated point dropped");
        assert_eq!(r.knee("sn54", "RND"), Some(0.05));
    }

    #[test]
    #[should_panic(expected = "duplicate setup name")]
    fn duplicate_setup_names_are_rejected() {
        let base = Setup::paper("sn54").expect("paper config");
        let _ = tiny_campaign()
            .with_setups(vec![base.clone(), base.with_smart(true)])
            .run();
    }

    #[test]
    fn knee_is_none_without_saturation() {
        let r = tiny_campaign().run();
        assert_eq!(r.knee("sn54", "RND"), None);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = tiny_campaign().run();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"slim_noc-sweep-v1\""));
        assert!(json.contains("\"campaign\": \"unit\""));
        assert_eq!(json.matches("\"setup\":").count(), 2);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("tab\there"), "tab\\u0009here");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn power_campaign_attaches_measured_power_columns() {
        let r = tiny_campaign().with_power(TechNode::N45).run();
        assert_eq!(r.tech, Some(TechNode::N45));
        for p in &r.points {
            let pw = p.power.expect("power-aware point");
            assert!(pw.power_w > 0.0 && pw.power_w.is_finite());
            assert!(pw.static_w > 0.0);
            assert!(pw.dynamic_w > 0.0, "activity must be measured");
            assert!(pw.area_mm2 > 0.0);
            assert!(pw.throughput_per_watt > 0.0);
            assert!(pw.energy_per_flit_j > 0.0);
            assert!(pw.edp_js > 0.0);
            assert!((pw.power_w - (pw.static_w + pw.dynamic_w)).abs() < 1e-12);
        }
        // More load, more measured activity, more dynamic power.
        let d = |i: usize| r.points[i].power.unwrap().dynamic_w;
        assert!(d(1) > d(0), "dynamic power grows with load");
    }

    #[test]
    fn plain_campaign_has_no_power_columns_and_v1_schema() {
        let r = tiny_campaign().run();
        assert_eq!(r.tech, None);
        assert!(r.points.iter().all(|p| p.power.is_none()));
        assert!(r.to_json().contains("\"schema\": \"slim_noc-sweep-v1\""));
        assert!(!r.to_json().contains("power_w"));
    }

    #[test]
    fn v2_json_is_a_superset_of_v1() {
        let v2 = tiny_campaign().with_power(TechNode::N45).run();
        let json = v2.to_json();
        assert!(json.contains("\"schema\": \"slim_noc-sweep-v2\""));
        assert!(json.contains("\"tech\": \"45nm\""));
        for field in [
            "power_w",
            "static_w",
            "dynamic_w",
            "area_mm2",
            "throughput_per_watt",
            "energy_per_flit_j",
            "edp_js",
        ] {
            assert_eq!(
                json.matches(&format!("\"{field}\":")).count(),
                v2.points.len(),
                "{field} on every point"
            );
        }
        // Strict v1 compatibility: stripping the power columns and the
        // tech header yields exactly the v1 serialization of the same
        // points.
        let mut v1 = v2.clone();
        v1.tech = None;
        for p in &mut v1.points {
            p.power = None;
        }
        let v1_json = v1.to_json();
        for (l2, l1) in json
            .lines()
            .filter(|l| !l.contains("\"tech\":"))
            .zip(v1_json.lines())
        {
            if l2.contains("\"schema\":") {
                continue;
            }
            let stripped = match l2.find(", \"power_w\":") {
                Some(idx) => {
                    let tail = if l2.ends_with("},") { "}," } else { "}" };
                    format!("{}{}", &l2[..idx], tail)
                }
                None => l2.to_string(),
            };
            assert_eq!(stripped, l1, "v2 line must reduce to its v1 form");
        }
    }
}
